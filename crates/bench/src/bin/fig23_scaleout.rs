//! Trace-calibrated scale-out co-simulation → the `"scaleout"` section
//! of `BENCH_fmm.json` and the data behind REPRODUCTION.md.
//!
//! The paper's Figures 2 and 3 are measured on up to 5400 Piz Daint
//! nodes. This host has one CPU, so this bin reproduces the *shapes* of
//! those figures by calibration + co-simulation:
//!
//! 1. **Measure** — run the real distributed TVD-RK2 driver (star_amr,
//!    2 localities) under an [`amt::trace`] session and extract a
//!    [`Calibration`]: per-category kernel-duration histograms, parcel
//!    payload sizes from `parcel/send` span labels, the
//!    parcels-per-step amplification over the leaf-halo push plan,
//!    worker utilization, the GPU launch-aggregation collapse of a
//!    batched FMM solve, and a timed checkpoint encode/restore
//!    round-trip. No hand-entered kernel constants anywhere.
//! 2. **Co-simulate** — run the [`perfmodel::des`] event loop over the
//!    real level-14 V1309 octree decomposition at 1…5400 simulated
//!    localities × {MPI, libfabric}, producing Fig-2 throughput /
//!    efficiency curves and the Fig-3 transport ratio.
//! 3. **Sweep cadence** — replay the simulated step time through the
//!    failure/rewind Monte Carlo at several node MTBFs, using the
//!    *measured* checkpoint costs, and locate the Young–Daly optimum.
//!
//! The paper-shape properties are machine-checked (panic on violation):
//! the libfabric:MPI ratio dips below 1 at one locality and grows past
//! it at scale (Fig. 3), parallel efficiency rolls off toward 5400
//! localities (Fig. 2, "too little work per node"), and every cadence
//! sweep has an interior optimum.
//!
//! ```sh
//! cargo run --release -p bench --bin fig23_scaleout [steps]
//! ```

use amt::trace::TraceSession;
use amt::Runtime;
use gravity::gpu::GpuContext;
use gravity::solver::FmmSolver;
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::QueuePolicy;
use hydro::eos::IdealGas;
use octotiger::{Config, DistributedDriver, Scenario};
use octree::geometry::Domain;
use octree::shard::ShardMap;
use octree::subgrid::Field;
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use perfmodel::calibrate::{Calibration, CheckpointCost, Measurements};
use perfmodel::des::{simulate_scaleout, sweep_cadence, CommPattern, DesOpts};
use perfmodel::scaling::{efficiency, v1309_structure_tree};
use perfmodel::ScaleoutResult;
use scf::lane_emden::Polytrope;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use util::vec3::Vec3;

/// Simulated locality counts — Piz Daint's full 5400 nodes at the top.
const LOCALITIES: &[usize] = &[1, 2, 8, 64, 256, 1024, 2048, 4096, 5400];
/// V1309 refinement level fed to the co-simulation (the paper's
/// smallest Figure-2 level; 13560 sub-grids).
const LEVEL: u8 = 14;
/// Worker threads per *simulated* locality — the Piz Daint node's 12
/// cores (Table 3). A machine parameter, not a workload calibration.
const SIM_THREADS: usize = 12;

/// The determinism suite's level-2 self-gravitating AMR scenario, the
/// measured workload (same as fig3_real_solver / fault_overhead).
fn star_amr() -> Scenario {
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let mut tree = Octree::new(Domain::new(8.0));
    tree.refine_where(2, |d, k| {
        let o = d.node_origin(k);
        k.level == 0 || (o.x < 0.0 && o.y < 0.0 && o.z < 0.0)
    });
    let domain = tree.domain();
    let center = Vec3::new(-1.0, -1.0, -1.0);
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let r = (c - center).norm();
            let rho = star.rho(r).max(1e-10);
            let e = star.e_int(r).max(rho * 1e-4);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Egas, i, j, k, e);
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e));
        }
    }
    tree.restrict_all();
    Scenario {
        name: "star_amr",
        tree,
        config: Config { eos, ..Config::self_gravitating() },
        binary: None,
    }
}

/// One aggregated GPU solve over the measured tree → (items, fused
/// launches), the launch-collapse input of the calibration.
fn measure_aggregation() -> (u64, u64) {
    let scenario = star_amr();
    let tree = Arc::new(scenario.tree);
    let dev = Device::new(DeviceSpec::p100(), 8);
    let solver = Arc::new(
        FmmSolver::with_gpu(0.5, GpuContext::new(&dev, 4, QueuePolicy::QueueOnBusy))
            .with_aggregation(8, 32),
    );
    let rt = Runtime::new(4);
    let _ = solver.solve_parallel(&tree, &rt);
    let agg = solver.gpu().expect("gpu context").agg_stats();
    (agg.items_gpu(), agg.batches_gpu())
}

/// Everything the measurement phase produces.
struct Measured {
    calib: Calibration,
    measured_subgrids: usize,
    measured_steps: usize,
    plan_parcels_per_step: u64,
    checkpoint: CheckpointCost,
}

/// Run the real distributed driver traced, time a checkpoint
/// round-trip, and extract the calibration.
fn measure(steps: usize) -> Measured {
    const MEASURED_LOCALITIES: usize = 2;
    const MEASURED_THREADS: usize = 2;

    // The leaf-halo push plan of the measured topology — the
    // amplification denominator.
    let plan_tree = star_amr().tree;
    let map = ShardMap::partition(&plan_tree, MEASURED_LOCALITIES).expect("shard map");
    let plan_parcels_per_step: u64 = map
        .halo_push_plan(&plan_tree)
        .iter()
        .flat_map(|by_dst| by_dst.values())
        .map(|keys| keys.len() as u64)
        .sum();

    let cluster = Arc::new(
        Cluster::builder()
            .localities(MEASURED_LOCALITIES)
            .threads_per(MEASURED_THREADS)
            .transport(TransportKind::Libfabric)
            .build(),
    );
    let mut driver = DistributedDriver::new(star_amr(), cluster).expect("driver");
    let session = TraceSession::begin();
    for _ in 0..steps {
        driver.step().expect("distributed step");
    }
    let trace = session.end();
    let metrics = driver.cluster().metrics().snapshot();

    // Measured checkpoint round-trip on the same state.
    let t0 = Instant::now();
    let blob = driver.checkpoint().expect("checkpoint");
    let encode_s = t0.elapsed().as_secs_f64();
    let fresh = Arc::new(
        Cluster::builder()
            .localities(MEASURED_LOCALITIES)
            .threads_per(MEASURED_THREADS)
            .transport(TransportKind::Libfabric)
            .build(),
    );
    let t0 = Instant::now();
    let restored = DistributedDriver::restore(star_amr(), fresh, &blob).expect("restore");
    let restore_s = t0.elapsed().as_secs_f64();
    assert_eq!(restored.steps, driver.steps, "restore must resume at the same step");

    let measured_subgrids = map.n_leaves();
    let (agg_items, agg_batches) = measure_aggregation();
    let checkpoint =
        CheckpointCost { encode_s, restore_s, subgrids: measured_subgrids };
    let mut calib = Calibration::from_measurements(&Measurements {
        trace: &trace,
        metrics: &metrics,
        subgrids: measured_subgrids,
        steps,
        threads: MEASURED_THREADS,
        transport: TransportKind::Libfabric,
        plan_parcels_per_step,
        agg_items,
        agg_batches,
        launch_overhead_us: DeviceSpec::p100().launch_overhead_us,
        checkpoint,
    })
    .expect("calibration");
    // Simulated localities are Piz Daint nodes (12 workers, Table 3);
    // the thread count is machine configuration, not workload.
    calib.threads = SIM_THREADS;
    Measured {
        calib,
        measured_subgrids,
        measured_steps: steps,
        plan_parcels_per_step,
        checkpoint,
    }
}

struct SweptTransport {
    kind: TransportKind,
    results: Vec<ScaleoutResult>,
    /// Parallel efficiency of each point against this transport's
    /// 1-locality throughput.
    efficiencies: Vec<f64>,
}

fn sweep_transport(
    patterns: &[CommPattern],
    kind: TransportKind,
    calib: &Calibration,
) -> SweptTransport {
    let opts = DesOpts::default();
    let results: Vec<ScaleoutResult> = patterns
        .iter()
        .map(|p| simulate_scaleout(p, kind, calib, &opts).expect("co-simulation"))
        .collect();
    let reference = results[0].point.subgrids_per_second / results[0].point.nodes as f64;
    let efficiencies =
        results.iter().map(|r| efficiency(&r.point, reference)).collect();
    SweptTransport { kind, results, efficiencies }
}

struct CadenceSweep {
    mtbf_node_years: f64,
    best_cadence: u32,
    best_overhead: f64,
    young_daly_steps: f64,
    points: Vec<(u32, f64)>,
}

/// Sweep checkpoint cadence around the Young–Daly prediction for each
/// node MTBF, using the measured per-sub-grid checkpoint costs.
fn sweep_cadences(
    step_time_s: f64,
    localities: usize,
    subgrids: usize,
    calib: &Calibration,
) -> Vec<CadenceSweep> {
    const YEAR_S: f64 = 365.25 * 86_400.0;
    let mut out = Vec::new();
    for mtbf_node_years in [0.5, 1.0, 5.0] {
        let mtbf_node_s = mtbf_node_years * YEAR_S;
        let mtbf_global_s = mtbf_node_s / localities as f64;
        let ckpt_s = calib.checkpoint_encode_s_per_subgrid * subgrids as f64;
        // Young–Daly optimal checkpoint interval, in steps.
        let young_daly_steps =
            (2.0 * ckpt_s * mtbf_global_s).sqrt() / step_time_s;
        let c = young_daly_steps.round().max(1.0) as u32;
        let mut cadences: Vec<u32> =
            [c / 16, c / 4, c, c * 4, c * 16].iter().map(|&x| x.max(1)).collect();
        cadences.dedup();
        // Horizon long enough to see O(100) failures (capped for time).
        let horizon =
            ((200.0 * mtbf_global_s / step_time_s) as u64).clamp(50_000, 20_000_000);
        let pts = sweep_cadence(
            step_time_s,
            localities,
            subgrids,
            calib,
            mtbf_node_s,
            &cadences,
            horizon,
            0xFA_117,
        );
        let best = pts
            .iter()
            .min_by(|a, b| a.overhead.total_cmp(&b.overhead))
            .expect("non-empty sweep");
        let first = pts.first().expect("non-empty");
        let last = pts.last().expect("non-empty");
        assert!(
            best.overhead <= first.overhead && best.overhead <= last.overhead,
            "cadence optimum must be interior (mtbf {mtbf_node_years}y): \
             best c={} {:.4} vs ends {:.4}/{:.4}",
            best.cadence,
            best.overhead,
            first.overhead,
            last.overhead
        );
        out.push(CadenceSweep {
            mtbf_node_years,
            best_cadence: best.cadence,
            best_overhead: best.overhead,
            young_daly_steps,
            points: pts.iter().map(|p| (p.cadence, p.overhead)).collect(),
        });
    }
    // Rarer failures → sparser checkpoints.
    for w in out.windows(2) {
        assert!(
            w[1].best_cadence >= w[0].best_cadence,
            "optimal cadence must grow with MTBF: {} then {}",
            w[0].best_cadence,
            w[1].best_cadence
        );
    }
    out
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("trace-calibrated scale-out co-simulation (level {LEVEL}, {host_cpus} host CPUs)");
    println!("{}", "-".repeat(78));

    // ---- 1. Measure. ----
    let m = measure(steps);
    let calib = &m.calib;
    println!(
        "calibration: {} kernel categories, {:.1} µs mean compute / sub-grid / step",
        calib.kernels.iter().filter(|k| k.hist.count() > 0).count(),
        calib.mean_compute_ns_per_subgrid() / 1e3
    );
    println!(
        "  utilization {:.2}  parcel mean {:.0} B  amplification {:.1}x  \
         launch collapse {:.1}x",
        calib.utilization,
        calib.mean_parcel_bytes(),
        calib.parcel_amplification,
        calib.agg_collapse
    );
    println!(
        "  checkpoint {:.3} ms encode / {:.3} ms restore per sub-grid (measured over {})",
        calib.checkpoint_encode_s_per_subgrid * 1e3,
        calib.checkpoint_restore_s_per_subgrid * 1e3,
        m.measured_subgrids
    );

    // ---- 2. Co-simulate the sweep. ----
    let tree = v1309_structure_tree(LEVEL);
    let t0 = Instant::now();
    let patterns: Vec<CommPattern> = LOCALITIES
        .iter()
        .map(|&n| CommPattern::from_tree(&tree, n).expect("pattern"))
        .collect();
    println!(
        "decomposed level-{LEVEL} tree ({} sub-grids) for {} locality counts in {:.1} s",
        patterns[0].subgrids,
        patterns.len(),
        t0.elapsed().as_secs_f64()
    );
    let t0 = Instant::now();
    let mpi = sweep_transport(&patterns, TransportKind::Mpi, calib);
    let lf = sweep_transport(&patterns, TransportKind::Libfabric, calib);
    println!("co-simulated {} points in {:.1} s", 2 * patterns.len(), t0.elapsed().as_secs_f64());
    println!("{}", "-".repeat(78));
    println!(
        "{:>10} {:>14} {:>9} {:>14} {:>9} {:>8}",
        "localities", "MPI sg/s", "eff", "libfabric sg/s", "eff", "lf:MPI"
    );
    let mut ratios = Vec::new();
    for i in 0..patterns.len() {
        let mp = &mpi.results[i].point;
        let lp = &lf.results[i].point;
        let ratio = lp.subgrids_per_second / mp.subgrids_per_second;
        ratios.push(ratio);
        println!(
            "{:>10} {:>14.0} {:>9.3} {:>14.0} {:>9.3} {:>8.3}",
            mp.nodes, mp.subgrids_per_second, mpi.efficiencies[i],
            lp.subgrids_per_second, lf.efficiencies[i], ratio
        );
    }

    // ---- Machine-checked Fig-2/3 shape assertions. ----
    assert!(LOCALITIES.len() >= 5, "need at least 5 locality counts");
    assert!(
        ratios[0] <= 1.0,
        "Fig 3 left edge: libfabric must dip below parity at 1 locality, got {}",
        ratios[0]
    );
    let last = ratios.len() - 1;
    assert!(
        ratios[last] > 1.0,
        "Fig 3: libfabric must win at 5400 localities, ratio {}",
        ratios[last]
    );
    let i64n = LOCALITIES.iter().position(|&n| n == 64).expect("64 in sweep");
    assert!(
        ratios[last] > ratios[0],
        "Fig 3: the transport ratio must grow with scale ({} -> {})",
        ratios[0],
        ratios[last]
    );
    let crossover = LOCALITIES
        .iter()
        .zip(&ratios)
        .find(|(_, &r)| r > 1.0)
        .map(|(&n, _)| n);
    println!(
        "transport crossover at {} localities; ratio at 5400 = {:.2}",
        crossover.map_or("none".to_string(), |n| n.to_string()),
        ratios[last]
    );
    assert!(
        lf.efficiencies[last] < 0.9 * lf.efficiencies[i64n],
        "Fig 2: efficiency must roll off toward 5400 localities ({} vs {} at 64)",
        lf.efficiencies[last],
        lf.efficiencies[i64n]
    );
    assert!(
        lf.efficiencies[last] > 0.005,
        "Fig 2: 5400-locality efficiency collapsed entirely: {}",
        lf.efficiencies[last]
    );

    // ---- 3. Checkpoint cadence vs MTBF. ----
    let step_5400 = lf.results[last].point.step_time_s;
    let cadences = sweep_cadences(step_5400, LOCALITIES[last], patterns[last].subgrids, calib);
    println!("{}", "-".repeat(78));
    println!("checkpoint cadence at 5400 localities (step {:.3} s, measured ckpt costs):", step_5400);
    for c in &cadences {
        println!(
            "  node MTBF {:>4}y: best every {:>6} steps (Young-Daly {:>8.0}), overhead {:.4}",
            c.mtbf_node_years, c.best_cadence, c.young_daly_steps, c.best_overhead
        );
    }

    // ---- Merge the "scaleout" section into BENCH_fmm.json. ----
    let mut s = String::new();
    s.push_str("  \"scaleout\": {\n");
    let _ = writeln!(s, "    \"level\": {LEVEL},");
    let _ = writeln!(s, "    \"subgrids\": {},", patterns[0].subgrids);
    let _ = writeln!(s, "    \"sim_threads\": {SIM_THREADS},");
    let _ = writeln!(s, "    \"host_cpus\": {host_cpus},");
    let _ = writeln!(s, "    \"calibration\": {{");
    let _ = writeln!(s, "      \"measured_scenario\": \"star_amr\",");
    let _ = writeln!(s, "      \"measured_localities\": 2,");
    let _ = writeln!(s, "      \"measured_subgrids\": {},", m.measured_subgrids);
    let _ = writeln!(s, "      \"measured_steps\": {},", m.measured_steps);
    let _ = writeln!(
        s,
        "      \"kernel_categories\": {},",
        calib.kernels.iter().filter(|k| k.hist.count() > 0).count()
    );
    let _ = writeln!(
        s,
        "      \"mean_compute_us_per_subgrid\": {:.2},",
        calib.mean_compute_ns_per_subgrid() / 1e3
    );
    let _ = writeln!(s, "      \"utilization\": {:.4},", calib.utilization);
    let _ = writeln!(s, "      \"parcel_mean_bytes\": {:.0},", calib.mean_parcel_bytes());
    let _ = writeln!(s, "      \"plan_parcels_per_step\": {},", m.plan_parcels_per_step);
    let _ = writeln!(s, "      \"parcel_amplification\": {:.2},", calib.parcel_amplification);
    let _ = writeln!(s, "      \"agg_collapse\": {:.2},", calib.agg_collapse);
    let _ = writeln!(s, "      \"launch_overhead_us\": {:.1},", calib.launch_overhead_us);
    let _ = writeln!(s, "      \"checkpoint_encode_ms\": {:.3},", m.checkpoint.encode_s * 1e3);
    let _ = writeln!(s, "      \"checkpoint_restore_ms\": {:.3}", m.checkpoint.restore_s * 1e3);
    let _ = writeln!(s, "    }},");
    for t in [&mpi, &lf] {
        let _ = writeln!(s, "    \"{}\": [", t.kind.as_str());
        for (i, r) in t.results.iter().enumerate() {
            let comma = if i + 1 == t.results.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "      {{ \"localities\": {}, \"step_s\": {:.6}, \
                 \"subgrids_per_sec\": {:.1}, \"efficiency\": {:.4} }}{comma}",
                r.point.nodes, r.point.step_time_s, r.point.subgrids_per_second,
                t.efficiencies[i]
            );
        }
        let _ = writeln!(s, "    ],");
    }
    let _ = writeln!(
        s,
        "    \"crossover_localities\": {},",
        crossover.map_or("null".to_string(), |n| n.to_string())
    );
    let _ = writeln!(s, "    \"ratio_at_1\": {:.4},", ratios[0]);
    let _ = writeln!(s, "    \"ratio_at_5400\": {:.4},", ratios[last]);
    let _ = writeln!(s, "    \"efficiency_at_5400\": {:.4},", lf.efficiencies[last]);
    let _ = writeln!(s, "    \"cadence\": [");
    for (i, c) in cadences.iter().enumerate() {
        let comma = if i + 1 == cadences.len() { "" } else { "," };
        let mut pts = String::new();
        for (j, (cad, ov)) in c.points.iter().enumerate() {
            let pcomma = if j + 1 == c.points.len() { "" } else { ", " };
            let _ = write!(pts, "[{cad}, {ov:.4}]{pcomma}");
        }
        let _ = writeln!(
            s,
            "      {{ \"mtbf_node_years\": {}, \"best_cadence\": {}, \
             \"best_overhead\": {:.4}, \"young_daly_steps\": {:.0}, \
             \"points\": [{pts}] }}{comma}",
            c.mtbf_node_years, c.best_cadence, c.best_overhead, c.young_daly_steps
        );
    }
    s.push_str("    ]\n  }");
    bench::merge_json_section("BENCH_fmm.json", "scaleout", &s);
    println!("merged \"scaleout\" into BENCH_fmm.json");
}
