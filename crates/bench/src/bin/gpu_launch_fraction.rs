//! Regenerate the **§6.1.2 launch-fraction numbers**: the percentage of
//! multipole FMM kernels launched on the GPU for the three measured
//! configurations, from the launch-policy simulation.
//!
//! ```sh
//! cargo run --release -p bench --bin gpu_launch_fraction
//! ```

use perfmodel::machine::table2_platforms;
use perfmodel::node_level::{simulate_node, Workload};

fn main() {
    println!("§6.1.2 — fraction of FMM kernels launched on the GPU");
    println!("{}", "=".repeat(72));
    let rows: &[(&str, f64, f64)] = &[
        ("20 cores + 1x V100", 987.0, 97.4995),
        ("10 cores + 1x V100", 1722.0, 99.9997),
        ("Piz Daint node + 1x P100", 1435.0, 99.5207),
    ];
    println!(
        "{:<32} {:>12} {:>12} {:>12}",
        "configuration", "model %", "paper %", "CPU kernels"
    );
    println!("{}", "-".repeat(72));
    let platforms = table2_platforms();
    for (pat, other_wall, paper_pct) in rows {
        let cfg = platforms.iter().find(|c| c.name.contains(pat)).unwrap();
        let w = Workload::v1309_level14(*other_wall);
        let r = simulate_node(cfg, &w);
        println!(
            "{:<32} {:>11.4}% {:>11.4}% {:>12}",
            cfg.name,
            100.0 * r.gpu_fraction,
            paper_pct,
            r.cpu_kernels
        );
    }
    println!("{}", "-".repeat(72));
    println!("Also the §6.1.2 fix (QueueOnBusy): with kernels queued on busy");
    println!("streams instead of falling back, 100% launch on the GPU — see");
    println!("gpusim::launch_policy::QueuePolicy::QueueOnBusy and its tests.");
}
