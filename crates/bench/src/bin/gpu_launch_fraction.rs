//! Regenerate the **§6.1.2 launch-fraction numbers**: the percentage of
//! multipole FMM kernels launched on the GPU for the three measured
//! configurations, from the launch-policy simulation — then *measure*
//! the same quantity by running the real futurized solver with its
//! kernel launches routed through the simulated device (§5.1: idle
//! stream → GPU, busy → CPU fallback).
//!
//! ```sh
//! cargo run --release -p bench --bin gpu_launch_fraction
//! ```

use amt::Runtime;
use gravity::gpu::GpuContext;
use gravity::solver::FmmSolver;
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::QueuePolicy;
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use perfmodel::machine::table2_platforms;
use perfmodel::node_level::{simulate_node, Workload};
use std::sync::Arc;
use util::vec3::Vec3;

/// A level-2 uniform tree with a two-blob density — the measured
/// workload: 73 nodes, two kernel launches per leaf pass.
fn measured_tree() -> Arc<Octree> {
    let mut t = Octree::new(Domain::new(16.0));
    t.refine_where(2, |_d, _k| true);
    let domain = t.domain();
    for key in t.leaves() {
        let node = t.node_mut(key).unwrap();
        let grid = node.grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let rho = 2.0 * (-(c - Vec3::new(-3.0, 0.0, 0.0)).norm2()).exp()
                + (-(c - Vec3::new(3.0, 1.0, 0.0)).norm2() / 2.0).exp()
                + 1e-8;
            grid.set(Field::Rho, i, j, k, rho);
        }
    }
    t.restrict_all();
    Arc::new(t)
}

fn measured_split(n_streams: usize, policy: QueuePolicy, label: &str) {
    let tree = measured_tree();
    let dev = Device::new(DeviceSpec::p100(), n_streams);
    let solver = Arc::new(FmmSolver::with_gpu(0.5, GpuContext::new(&dev, 4, policy)));
    let rt = Runtime::new(4);
    let field = solver.solve_parallel(&tree, &rt);
    let stats = solver.gpu().unwrap().stats();
    println!(
        "{:<40} {:>6} GPU {:>6} CPU {:>10.2}%",
        label,
        field.kernel_launches_gpu,
        field.kernel_launches_cpu,
        100.0 * stats.gpu_fraction()
    );
}

/// One batched solve over the measured tree with the given aggregation
/// thresholds (QueueOnBusy so every item lands on a stream and the
/// launch counts are deterministic). Returns `(items, fused launches)`.
fn aggregated_run(slots: usize, window: usize) -> (u64, u64) {
    let tree = measured_tree();
    let dev = Device::new(DeviceSpec::p100(), 8);
    let solver = Arc::new(
        FmmSolver::with_gpu(0.5, GpuContext::new(&dev, 4, QueuePolicy::QueueOnBusy))
            .with_aggregation(slots, window),
    );
    let rt = Runtime::new(4);
    let _ = solver.solve_parallel(&tree, &rt);
    let agg = solver.gpu().unwrap().agg_stats();
    (agg.items_gpu(), agg.batches_gpu())
}

/// The work-aggregation launch collapse (ISSUE 7): the same solve, per
/// item vs batched, and what the per-launch overhead model says that
/// saves. Appends an `"aggregation"` section to `BENCH_fmm.json`.
fn aggregation_collapse() {
    println!();
    println!("Work aggregation (arXiv:2210.06438): fused launches for the");
    println!("same solve, slot sweep (window = 4 x slots, QueueOnBusy):");
    println!("{}", "-".repeat(72));
    let overhead_us = DeviceSpec::p100().launch_overhead_us;
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>14}",
        "slots", "items", "launches", "collapse", "overhead (µs)"
    );
    let mut sweep = String::new();
    let mut batched = (0u64, 0u64);
    for slots in [1usize, 2, 4, 8, 16, 32] {
        let (items, launches) = aggregated_run(slots, 4 * slots);
        let collapse = items as f64 / launches as f64;
        println!(
            "{:<10} {:>8} {:>10} {:>9.2}x {:>14.1}",
            slots,
            items,
            launches,
            collapse,
            launches as f64 * overhead_us
        );
        if !sweep.is_empty() {
            sweep.push_str(", ");
        }
        sweep.push_str(&format!("\"{slots}\": {launches}"));
        if slots == 8 {
            batched = (items, launches);
        }
    }
    let (items, launches) = batched;
    let baseline = items; // per-item: one launch per kernel
    let collapse = baseline as f64 / launches as f64;
    let saved_us = (baseline - launches) as f64 * overhead_us;
    println!("{}", "-".repeat(72));
    println!(
        "default (8 slots): {baseline} -> {launches} launches ({collapse:.2}x), \
         modeled launch-overhead saving {saved_us:.0} µs/solve"
    );
    let section = format!(
        "  \"aggregation\": {{\n    \
         \"kernel_items\": {items},\n    \
         \"baseline_launches\": {baseline},\n    \
         \"batched_launches\": {launches},\n    \
         \"collapse_factor\": {collapse:.3},\n    \
         \"agg_slots\": 8,\n    \
         \"agg_window\": 32,\n    \
         \"launch_overhead_us\": {overhead_us:.1},\n    \
         \"baseline_overhead_us\": {:.1},\n    \
         \"batched_overhead_us\": {:.1},\n    \
         \"modeled_overhead_saving_us\": {saved_us:.1},\n    \
         \"launches_by_slots\": {{ {sweep} }}\n  }}",
        baseline as f64 * overhead_us,
        launches as f64 * overhead_us,
    );
    bench::merge_json_section("BENCH_fmm.json", "aggregation", &section);
    println!("merged \"aggregation\" into BENCH_fmm.json");
}

fn main() {
    println!("§6.1.2 — fraction of FMM kernels launched on the GPU");
    println!("{}", "=".repeat(72));
    let rows: &[(&str, f64, f64)] = &[
        ("20 cores + 1x V100", 987.0, 97.4995),
        ("10 cores + 1x V100", 1722.0, 99.9997),
        ("Piz Daint node + 1x P100", 1435.0, 99.5207),
    ];
    println!(
        "{:<32} {:>12} {:>12} {:>12}",
        "configuration", "model %", "paper %", "CPU kernels"
    );
    println!("{}", "-".repeat(72));
    let platforms = table2_platforms();
    for (pat, other_wall, paper_pct) in rows {
        let cfg = platforms.iter().find(|c| c.name.contains(pat)).unwrap();
        let w = Workload::v1309_level14(*other_wall);
        let r = simulate_node(cfg, &w);
        println!(
            "{:<32} {:>11.4}% {:>11.4}% {:>12}",
            cfg.name,
            100.0 * r.gpu_fraction,
            paper_pct,
            r.cpu_kernels
        );
    }
    println!("{}", "-".repeat(72));
    println!("Also the §6.1.2 fix (QueueOnBusy): with kernels queued on busy");
    println!("streams instead of falling back, 100% launch on the GPU — see");
    println!("gpusim::launch_policy::QueuePolicy::QueueOnBusy and its tests.");
    println!();
    println!("Measured: real futurized FMM solve (level-2 tree, 4 workers),");
    println!("launches routed per §5.1 through the simulated P100:");
    println!("{}", "-".repeat(72));
    measured_split(4, QueuePolicy::CpuFallback, "4 streams, CPU fallback");
    measured_split(1, QueuePolicy::CpuFallback, "1 stream, CPU fallback (starved)");
    measured_split(4, QueuePolicy::QueueOnBusy, "4 streams, queue on busy (the fix)");
    aggregation_collapse();
}
