//! Regenerate **Figure 2**: relative speedup (processed sub-grids per
//! second against level 14 on one node) for levels 14–17 over node
//! counts 1…5400, with both parcelports — plus the §6.2/§6.3 efficiency
//! headlines (E8).
//!
//! ```sh
//! cargo run --release -p bench --bin fig2_scaling [max_level]
//! ```
//!
//! Note: the paper's levels 14–17 trees have 1e4–1.5e6 sub-grids; this
//! harness defaults to our trees at levels 12–15 (same decomposition
//! machinery, laptop-sized censuses) and scales node counts to keep
//! sub-grids/node comparable. Pass 17 to run the full-size sweep
//! (several minutes, gigabytes of RAM).

use parcelport::netmodel::TransportKind;
use perfmodel::scaling::{simulate_scaling, v1309_structure_tree, HandCalibration};

fn main() {
    let max_level: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let levels: Vec<u8> = (max_level.saturating_sub(3)..=max_level).collect();
    let calib = HandCalibration::default();

    // Reference: the coarsest level on one node (the paper normalizes
    // to level 14 on 1 node).
    let ref_tree = v1309_structure_tree(levels[0]);
    let ref_point = simulate_scaling(&ref_tree, 1, TransportKind::Libfabric, &calib);
    let ref_throughput = ref_point.subgrids_per_second;
    println!(
        "Figure 2 — speedup w.r.t. processed sub-grids on one node (level {})",
        levels[0]
    );
    println!("reference: {:.1} sub-grids/s on 1 node\n", ref_throughput);

    for &level in &levels {
        let tree = v1309_structure_tree(level);
        let subgrids = tree.leaf_count();
        println!(
            "level {level}: {subgrids} sub-grids  (speedup = sub-grids/s / reference)"
        );
        println!(
            "{:>7} {:>14} {:>14} {:>12} {:>12} {:>9}",
            "nodes", "MPI sg/s", "libfabric sg/s", "speedup MPI", "speedup LF", "eff LF"
        );
        let mut nodes = 1usize;
        while nodes <= 5400 {
            // Skip node counts with less than ~2 sub-grids per node.
            if subgrids / nodes >= 2 {
                let m = simulate_scaling(&tree, nodes, TransportKind::Mpi, &calib);
                let l = simulate_scaling(&tree, nodes, TransportKind::Libfabric, &calib);
                println!(
                    "{:>7} {:>14.1} {:>14.1} {:>12.1} {:>12.1} {:>8.1}%",
                    nodes,
                    m.subgrids_per_second,
                    l.subgrids_per_second,
                    m.subgrids_per_second / ref_throughput,
                    l.subgrids_per_second / ref_throughput,
                    100.0 * l.subgrids_per_second / (ref_throughput * nodes as f64),
                );
            }
            nodes = if nodes == 4096 { 5400 } else { nodes * 2 };
        }
        println!();
    }
    println!("Paper anchors (E8): level 17 libfabric weak-scaling efficiency");
    println!("78.4% @1024 and 68.1% @2048; level 16: 71.4% @256 down to 21.2%");
    println!("@5400. Compare the eff column at matching sub-grids-per-node.");
}
