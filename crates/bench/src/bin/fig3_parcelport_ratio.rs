//! Regenerate **Figure 3**: the ratio of processed sub-grids per second
//! between HPX's libfabric and MPI parcelports (higher = libfabric
//! faster).
//!
//! ```sh
//! cargo run --release -p bench --bin fig3_parcelport_ratio [max_level]
//! ```

use parcelport::netmodel::TransportKind;
use perfmodel::scaling::{simulate_scaling, v1309_structure_tree, HandCalibration};

fn main() {
    let max_level: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let levels: Vec<u8> = (max_level.saturating_sub(2)..=max_level).collect();
    let calib = HandCalibration::default();

    println!("Figure 3 — ratio of processed sub-grids/s, libfabric / MPI");
    println!("(paper: ~1 or slightly below at small N, rising to ~2.5-2.8)\n");
    print!("{:>7}", "nodes");
    for &level in &levels {
        print!("  level {level:>2}");
    }
    println!();

    let trees: Vec<_> = levels.iter().map(|&l| v1309_structure_tree(l)).collect();
    let mut nodes = 1usize;
    while nodes <= 5400 {
        print!("{nodes:>7}");
        for tree in &trees {
            if tree.leaf_count() / nodes >= 2 {
                let m = simulate_scaling(tree, nodes, TransportKind::Mpi, &calib);
                let l = simulate_scaling(tree, nodes, TransportKind::Libfabric, &calib);
                print!("  {:>8.2}", l.subgrids_per_second / m.subgrids_per_second);
            } else {
                print!("  {:>8}", "-");
            }
        }
        println!();
        nodes = if nodes == 4096 { 5400 } else { nodes * 2 };
    }
    println!("\nThe dip below 1.0 at one node is the libfabric polling tax");
    println!("(\"a slight reduction in performance for lower node counts\",");
    println!("§6.3); the plateau near 2.8 at scale matches the paper's");
    println!("\"outperforms it by a factor of almost 3 for the largest runs\".");
}
