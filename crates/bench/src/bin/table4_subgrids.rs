//! Regenerate **Table 4**: number of tree nodes (sub-grids) per level
//! of refinement and the memory they need, from the real V1309
//! refinement rule (§6: stars → L−2, accretor core → L−1, donor core →
//! L) on the real octree.
//!
//! ```sh
//! cargo run --release -p bench --bin table4_subgrids [max_level]
//! ```
//!
//! Levels 13–15 run in seconds; 16 takes a minute-ish; 17 allocates a
//! multi-million-node structure tree. Pass a smaller max level to stop
//! early.

use octree::subgrid::{FIELD_COUNT, N_GHOST, N_SUB};
use perfmodel::scaling::v1309_structure_tree;

/// Paper values: (level, sub-grids, memory GB).
const PAPER: &[(u8, f64, f64)] = &[
    (13, 5_417.0, 8.0),
    (14, 10_928.0, 16.37),
    (15, 42_947.0, 56.92),
    (16, 2.24e5, 271.94),
    (17, 1.5e6, 2_305.92),
];

fn main() {
    let max_level: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    // Our per-sub-grid footprint: hydro fields on the ghosted grid plus
    // the gravity workspace (multipoles 10 + expansions 10 doubles per
    // interior cell), matching this implementation's actual structures.
    let dim = N_SUB + 2 * N_GHOST;
    let hydro_bytes = FIELD_COUNT * dim * dim * dim * 8;
    let gravity_bytes = 20 * N_SUB * N_SUB * N_SUB * 8;
    let per_subgrid = (hydro_bytes + gravity_bytes) as f64;

    println!("Table 4 — sub-grids and memory per level of refinement");
    println!("{}", "=".repeat(86));
    println!(
        "{:>5} {:>12} {:>12} {:>12}   {:>12} {:>10} {:>10}",
        "level", "nodes", "leaves", "mem[GB]", "paper nodes", "paper[GB]", "build[s]"
    );
    println!("{}", "-".repeat(86));
    for &(level, paper_n, paper_gb) in PAPER {
        if level > max_level {
            println!("{level:>5}   (skipped: pass {level} as max_level to include)");
            continue;
        }
        let t0 = std::time::Instant::now();
        let tree = v1309_structure_tree(level);
        let nodes = tree.len();
        let leaves = tree.leaf_count();
        let mem_gb = nodes as f64 * per_subgrid / 1e9;
        println!(
            "{level:>5} {nodes:>12} {leaves:>12} {:>12.2}   {:>12.0} {:>10.2} {:>10.1}",
            mem_gb,
            paper_n,
            paper_gb,
            t0.elapsed().as_secs_f64()
        );
    }
    println!("{}", "-".repeat(86));
    println!("Counts come from the geometric refinement rule of §6 applied to");
    println!("our Roche-lobe binary model; the growth pattern (x2 -> x4 -> x5+ -> x7,");
    println!("approaching the volume-dominated factor 8) is the Table 4 shape.");
    println!("Memory uses this implementation's measured per-sub-grid footprint");
    println!("({:.2} MB: {} hydro fields on {}^3 ghosted grids + FMM workspace);", per_subgrid / 1e6, FIELD_COUNT, dim);
    println!("Octo-Tiger stores more per cell, hence its larger absolute GB.");
}
