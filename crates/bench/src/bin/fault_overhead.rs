//! Reliable-delivery overhead + checkpoint cost → the `"fault"`
//! section of `BENCH_fmm.json`.
//!
//! The fault-tolerant parcelport must be affordable when nothing goes
//! wrong: the acceptance bar is ≤ 5% throughput overhead for the
//! sequence/ack/retransmit layer on a fault-free run of the level-2
//! self-gravitating benchmark. This bin measures
//!
//! * baseline distributed throughput (no reliability, no faults),
//! * the same run with the reliability layer on (framing, acks,
//!   retransmit bookkeeping — but a perfect fabric, so zero retries),
//! * a lossy run (seeded drop/duplicate/delay) demonstrating the
//!   retransmit machinery actually firing, with its counter totals, and
//! * checkpoint encode / restore wall time and blob size.
//!
//! ```sh
//! cargo run --release -p bench --bin fault_overhead [steps]
//! ```

use hydro::eos::IdealGas;
use octotiger::{Config, DistributedDriver, Scenario};
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::fault::FaultPlan;
use parcelport::netmodel::TransportKind;
use parcelport::reliable::ReliablePolicy;
use scf::lane_emden::Polytrope;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use util::vec3::Vec3;

/// The determinism suite's level-2 self-gravitating AMR scenario.
fn star_amr() -> Scenario {
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let mut tree = Octree::new(Domain::new(8.0));
    tree.refine_where(2, |d, k| {
        let o = d.node_origin(k);
        k.level == 0 || (o.x < 0.0 && o.y < 0.0 && o.z < 0.0)
    });
    let domain = tree.domain();
    let center = Vec3::new(-1.0, -1.0, -1.0);
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let r = (c - center).norm();
            let rho = star.rho(r).max(1e-10);
            let e = star.e_int(r).max(rho * 1e-4);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Egas, i, j, k, e);
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e));
        }
    }
    tree.restrict_all();
    Scenario {
        name: "star_amr",
        tree,
        config: Config { eos, ..Config::self_gravitating() },
        binary: None,
    }
}

struct Run {
    subgrids_per_sec: f64,
    dt_bits: u64,
    retries: u64,
    acks: u64,
    dup_dropped: u64,
}

fn run(kind: TransportKind, steps: usize, reliable: bool, plan: Option<FaultPlan>) -> Run {
    let mut b = Cluster::builder().localities(2).threads_per(2).transport(kind);
    if let Some(p) = plan {
        b = b.fault_plan(p);
    }
    if reliable {
        b = b.reliable(ReliablePolicy::default());
    }
    let cluster = Arc::new(b.build());
    let mut driver = DistributedDriver::new(star_amr(), cluster).expect("driver");
    let mut dt_bits = 0u64;
    let t0 = Instant::now();
    for _ in 0..steps {
        dt_bits = driver.step().expect("step").to_bits();
    }
    let wall = t0.elapsed().as_secs_f64();
    let m = driver.cluster().metrics();
    Run {
        subgrids_per_sec: driver.subgrids_processed as f64 / wall,
        dt_bits,
        retries: m.get("parcelport/retries"),
        acks: m.get("parcelport/acks"),
        dup_dropped: m.get("parcelport/dup_dropped"),
    }
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let kind = TransportKind::Libfabric;

    println!("fault-tolerance overhead (star_amr, 2 localities, {kind}, {steps} step(s))");
    println!("{}", "-".repeat(72));

    let base = run(kind, steps, false, None);
    let rel = run(kind, steps, true, None);
    let lossy = run(
        kind,
        steps,
        true,
        Some(FaultPlan::seeded(0xE12).drop(0.05).duplicate(0.05).delay(0.05, 64)),
    );
    assert_eq!(base.dt_bits, rel.dt_bits, "reliability must not perturb results");
    assert_eq!(base.dt_bits, lossy.dt_bits, "a crashless fault plan must not perturb results");

    let overhead_pct = 100.0 * (1.0 - rel.subgrids_per_sec / base.subgrids_per_sec);
    for (name, r) in [("baseline", &base), ("reliable", &rel), ("lossy", &lossy)] {
        println!(
            "{name:<10} {:>10.2} sub-grids/s   retries {:>4}  acks {:>6}  dup_dropped {:>4}",
            r.subgrids_per_sec, r.retries, r.acks, r.dup_dropped
        );
    }
    println!("{}", "-".repeat(72));
    println!("reliable-delivery overhead: {overhead_pct:.2}% (budget: 5%)");
    assert!(lossy.retries > 0, "the lossy run must exercise retransmission");

    // Checkpoint encode/restore cost on the same state.
    let cluster = Arc::new(Cluster::builder().localities(2).threads_per(2).build());
    let mut driver = DistributedDriver::new(star_amr(), cluster).expect("driver");
    driver.step().expect("step");
    let t0 = Instant::now();
    let blob = driver.checkpoint().expect("checkpoint");
    let encode_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fresh = Arc::new(Cluster::builder().localities(2).threads_per(2).build());
    let t0 = Instant::now();
    let restored = DistributedDriver::restore(star_amr(), fresh, &blob).expect("restore");
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(restored.steps, 1);
    println!(
        "checkpoint: {} bytes, encode {encode_ms:.2} ms, restore {restore_ms:.2} ms",
        blob.len()
    );

    let mut section = String::new();
    section.push_str("  \"fault\": {\n");
    let _ = writeln!(section, "    \"scenario\": \"star_amr\",");
    let _ = writeln!(section, "    \"localities\": 2,");
    let _ = writeln!(section, "    \"transport\": \"{}\",", kind.as_str());
    let _ = writeln!(section, "    \"steps\": {steps},");
    for (name, r) in [("baseline", &base), ("reliable", &rel), ("lossy", &lossy)] {
        let _ = writeln!(section, "    \"{name}\": {{");
        let _ = writeln!(section, "      \"subgrids_per_sec\": {:.2},", r.subgrids_per_sec);
        let _ = writeln!(section, "      \"retries\": {},", r.retries);
        let _ = writeln!(section, "      \"acks\": {},", r.acks);
        let _ = writeln!(section, "      \"dup_dropped\": {}", r.dup_dropped);
        let _ = writeln!(section, "    }},");
    }
    let _ = writeln!(section, "    \"reliable_overhead_pct\": {overhead_pct:.2},");
    let _ = writeln!(section, "    \"checkpoint_bytes\": {},", blob.len());
    let _ = writeln!(section, "    \"checkpoint_encode_ms\": {encode_ms:.3},");
    let _ = writeln!(section, "    \"checkpoint_restore_ms\": {restore_ms:.3}");
    section.push_str("  }");

    let path = "BENCH_fmm.json";
    bench::merge_json_section(path, "fault", &section);
    println!("merged \"fault\" into {path}");
}
