//! Regenerate **Table 2**: FMM kernel node-level performance on the
//! paper's platforms, from the event-driven node model.
//!
//! ```sh
//! cargo run --release -p bench --bin table2_node_level
//! ```

use perfmodel::machine::table2_platforms;
use perfmodel::node_level::{simulate_node, Workload};

/// (platform substring, paper total s, paper FMM s, paper GFLOP/s,
/// paper % of peak, non-FMM wall used as model input).
const PAPER_ROWS: &[(&str, f64, f64, f64, f64, f64)] = &[
    ("10 cores (CPU only)", 2950.0, 1228.0, 125.0, 30.0, 1722.0),
    ("10 cores + 1x V100", 1790.0, 68.0, 2271.0, 32.0, 1722.0),
    ("10 cores + 2x V100", 1770.0, 48.0, 3185.0, 22.0, 1722.0),
    ("20 cores (CPU only)", 1601.0, 614.0, 250.0, 30.0, 987.0),
    ("20 cores + 1x V100", 1086.0, 100.0, 1516.0, 22.0, 987.0),
    ("20 cores + 2x V100", 1017.0, 30.0, 5188.0, 37.0, 987.0),
    ("Phi", 1774.0, 334.0, 459.0, 17.0, 1440.0),
    ("Piz Daint node (CPU only)", 2415.0, 980.0, 157.0, 31.0, 1435.0),
    ("Piz Daint node + 1x P100", 1592.0, 158.0, 973.0, 21.0, 1435.0),
];

fn main() {
    println!("Table 2 — FMM kernel node-level performance (model vs paper)");
    println!("{}", "=".repeat(100));
    println!(
        "{:<38} {:>9} {:>9} {:>10} {:>7}   {:>9} {:>10} {:>7}",
        "platform", "total[s]", "FMM[s]", "GFLOP/s", "%peak", "paper FMM", "paper GF/s", "paper%"
    );
    println!("{}", "-".repeat(100));
    let platforms = table2_platforms();
    for (pat, _p_total, p_fmm, p_gflops, p_peak, other_wall) in PAPER_ROWS {
        let cfg = platforms
            .iter()
            .find(|c| c.name.contains(pat))
            .unwrap_or_else(|| panic!("platform {pat} missing"));
        let w = Workload::v1309_level14(*other_wall);
        let r = simulate_node(cfg, &w);
        println!(
            "{:<38} {:>9.0} {:>9.0} {:>10.0} {:>6.1}%   {:>9.0} {:>10.0} {:>6.1}%",
            cfg.name,
            r.total_wall_s,
            r.fmm_wall_s,
            r.gflops,
            100.0 * r.fraction_of_peak,
            p_fmm,
            p_gflops,
            p_peak
        );
        if r.gpu_fraction > 0.0 {
            println!(
                "{:<38} GPU launch fraction: {:.4}% ({} GPU / {} CPU kernels)",
                "",
                100.0 * r.gpu_fraction,
                r.gpu_kernels,
                r.cpu_kernels
            );
        }
    }
    println!("{}", "-".repeat(100));
    println!("Model anchored to the Xeon-10 CPU-only row (workload definition);");
    println!("GPU rows emerge from the §5.1 stream/fallback dynamics. Shapes to");
    println!("compare: GPUs cut FMM time by >10x; 10c+1 V100 launch-limited at");
    println!("~68 s; 2 GPUs scale; KNL reaches ~17% of its large peak.");
}
