//! Regenerate the **§6.3 startup claim**: refining the level-13 restart
//! file to levels 16/17 is an order of magnitude faster with the
//! libfabric parcelport.
//!
//! ```sh
//! cargo run --release -p bench --bin startup_regrid
//! ```

use parcelport::netmodel::TransportKind;
use perfmodel::regrid::simulate_regrid;

fn main() {
    println!("§6.3 — startup/regrid time: level 13 refined to 16/17");
    println!("{}", "=".repeat(72));
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "target", "nodes", "msgs/node", "MPI [s]", "libfabric[s]", "ratio"
    );
    println!("{}", "-".repeat(72));
    // Paper sub-grid counts (Table 4).
    let cases = [(16u8, 224_000usize, 512usize), (16, 224_000, 2048), (17, 1_500_000, 2048)];
    for (target, subgrids, nodes) in cases {
        let mpi = simulate_regrid(TransportKind::Mpi, 5_417, subgrids, nodes, 12, 40);
        let lf = simulate_regrid(TransportKind::Libfabric, 5_417, subgrids, nodes, 12, 40);
        println!(
            "{:>6} {:>8} {:>12} {:>12.2} {:>12.2} {:>7.1}x",
            target,
            nodes,
            mpi.messages_per_node,
            mpi.wall_s,
            lf.wall_s,
            mpi.wall_s / lf.wall_s
        );
    }
    println!("{}", "-".repeat(72));
    println!("Regridding is a storm of small messages: MPI drains them through");
    println!("its locked progress engine (serial per node), libfabric through");
    println!("lock-free completion queues polled by all 12 workers — the");
    println!("order-of-magnitude startup difference the paper reports.");
}
