//! APEX-style per-worker task timeline → `trace_timeline.json`
//! (loadable in chrome://tracing or Perfetto) plus the `"trace"`
//! section of `BENCH_fmm.json`.
//!
//! Two measurements:
//!
//! 1. **Timeline** — a level-2 self-gravitating star run under an
//!    [`amt::trace`] session: the full span timeline (per-worker task
//!    runs, FMM stages, hydro RHS, halo fills, idle gaps) is exported
//!    as trace-event JSON and summarised per category.
//! 2. **Overhead** — the same run and a 2-locality distributed star
//!    run, each timed with tracing off and on. The distributed pair is
//!    additionally checked bit-identical (per-step dt and the full
//!    assembled state), since spans must only observe, never perturb.
//!
//! ```sh
//! cargo run --release -p bench --bin trace_timeline [steps] [out.json]
//! ```

use amt::trace::{Trace, TraceCategory, TraceSession};
use octotiger::{DistributedDriver, Scenario, Simulation};
use octree::subgrid::ALL_FIELDS;
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Bit-exact digest of every grid-carrying node's interior, so traced
/// and untraced runs can be compared without holding both trees. Each
/// (node, field) gets an FNV-1a hash over its raw f64 bits, keyed by
/// the node's debug name; the per-entry hashes are combined with a
/// commutative sum because `level_keys` iteration order is not stable
/// across tree instances.
fn state_digest(tree: &Octree) -> u64 {
    let mut total: u64 = 0;
    for level in 0..=tree.max_level() {
        for key in tree.level_keys(level) {
            let Some(grid) = tree.node(key).and_then(|n| n.grid.as_ref()) else {
                continue;
            };
            let name = format!("{key:?}");
            for (f, field) in ALL_FIELDS.into_iter().enumerate() {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h ^= f as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
                for (i, j, k) in grid.indexer().interior() {
                    h ^= grid.at(field, i, j, k).to_bits();
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                total = total.wrapping_add(h);
            }
        }
    }
    total
}

/// One single-node run: wall seconds, per-step dt bits, state digest,
/// and (when `traced`) the drained trace.
fn run_single(steps: usize, traced: bool) -> (f64, Vec<u64>, u64, Option<Trace>) {
    let mut sim = Simulation::new(Scenario::single_star(2));
    let session = traced.then(TraceSession::begin);
    let t0 = Instant::now();
    let dts: Vec<u64> = (0..steps).map(|_| sim.step().to_bits()).collect();
    let wall = t0.elapsed().as_secs_f64();
    let trace = session.map(TraceSession::end);
    (wall, dts, state_digest(sim.tree()), trace)
}

/// One distributed run over a 2-locality libfabric cluster.
fn run_distributed(steps: usize, traced: bool) -> (f64, Vec<u64>, u64, Option<Trace>) {
    let cluster = Arc::new(
        Cluster::builder()
            .localities(2)
            .threads_per(2)
            .transport(TransportKind::Libfabric)
            .build(),
    );
    let mut driver =
        DistributedDriver::new(Scenario::single_star(2), cluster).expect("distributed driver");
    let session = traced.then(TraceSession::begin);
    let t0 = Instant::now();
    let dts: Vec<u64> =
        (0..steps).map(|_| driver.step().expect("step").to_bits()).collect();
    let wall = t0.elapsed().as_secs_f64();
    let trace = session.map(TraceSession::end);
    (wall, dts, state_digest(&driver.assemble()), trace)
}

/// Which coarse bucket a category contributes to in the E11 breakdown.
fn bucket(cat: TraceCategory) -> Option<&'static str> {
    use TraceCategory::*;
    Some(match cat {
        FmmP2M | FmmM2M | FmmGather | FmmSameLevel | FmmNearField | FmmL2L | FmmLeafAssembly
        | GpuLaunch => "fmm",
        HydroRhs | HydroApply => "hydro",
        HaloFill | HaloExchange | MomentExchange | ParcelSend | ParcelRecv => "halo",
        Idle => "idle",
        _ => return None, // Step/GravitySolve/... nest over the above.
    })
}

fn overhead_percent(off: f64, on: f64) -> f64 {
    (on - off) / off * 100.0
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    // Bench artifacts live under target/bench/ so they never litter the
    // repo root (and stay covered by `cargo clean`).
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/bench/trace_timeline.json".into());
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
        }
    }
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("task timeline (single_star level 2, {steps} step(s), {host_cpus} host CPUs)");
    println!("{}", "-".repeat(72));

    // Timeline + single-node overhead. Untraced first so the traced run
    // cannot warm caches for it.
    let (wall_off, dts_off, digest_off, _) = run_single(steps, false);
    let (wall_on, dts_on, digest_on, trace) = run_single(steps, true);
    let trace = trace.expect("traced run returns a trace");
    assert_eq!(dts_off, dts_on, "tracing changed a dt");
    assert_eq!(digest_off, digest_on, "tracing changed the state");
    let single_overhead = overhead_percent(wall_off, wall_on);

    std::fs::write(&out_path, trace.export_chrome_json())
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    let summary: Vec<_> = trace.summary().into_iter().filter(|s| s.count > 0).collect();
    println!(
        "{:<18} {:>8} {:>12} {:>12}",
        "category", "count", "total ms", "max µs"
    );
    for s in &summary {
        println!(
            "{:<18} {:>8} {:>12.3} {:>12.1}",
            s.cat.as_str(),
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e3
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "events {}  dropped {}  wall {:.1} ms  idle rate {}‰",
        trace.events.len(),
        trace.dropped,
        trace.wall_ns() as f64 / 1e6,
        trace.idle_rate_permille()
    );
    println!("single-node overhead: {single_overhead:+.2}% wall-clock");

    // Distributed overhead + bit-identity.
    let (dwall_off, ddts_off, ddigest_off, _) = run_distributed(steps, false);
    let (dwall_on, ddts_on, ddigest_on, _) = run_distributed(steps, true);
    let bit_identical = ddts_off == ddts_on && ddigest_off == ddigest_on;
    assert!(bit_identical, "tracing perturbed the distributed run");
    let dist_overhead = overhead_percent(dwall_off, dwall_on);
    println!("distributed overhead: {dist_overhead:+.2}% wall-clock (bit-identical: {bit_identical})");
    println!("wrote {out_path}");

    // Merge the "trace" section into BENCH_fmm.json.
    let busy_ns: u64 = summary
        .iter()
        .filter(|s| bucket(s.cat).is_some_and(|b| b != "idle"))
        .map(|s| s.total_ns)
        .sum();
    let mut section = String::new();
    section.push_str("  \"trace\": {\n");
    let _ = writeln!(section, "    \"scenario\": \"single_star\",");
    let _ = writeln!(section, "    \"level\": 2,");
    let _ = writeln!(section, "    \"steps\": {steps},");
    let _ = writeln!(section, "    \"host_cpus\": {host_cpus},");
    let _ = writeln!(section, "    \"events\": {},", trace.events.len());
    let _ = writeln!(section, "    \"dropped\": {},", trace.dropped);
    let _ = writeln!(section, "    \"wall_ms\": {:.3},", trace.wall_ns() as f64 / 1e6);
    let _ = writeln!(section, "    \"idle_rate_permille\": {},", trace.idle_rate_permille());
    let _ = writeln!(section, "    \"overhead_percent\": {single_overhead:.2},");
    let _ = writeln!(section, "    \"distributed_overhead_percent\": {dist_overhead:.2},");
    let _ = writeln!(section, "    \"bit_identical\": {bit_identical},");
    for (name, b) in [("fmm_ms", "fmm"), ("hydro_ms", "hydro"), ("halo_ms", "halo"), ("idle_ms", "idle")]
    {
        let ns: u64 = summary
            .iter()
            .filter(|s| bucket(s.cat) == Some(b))
            .map(|s| s.total_ns)
            .sum();
        let _ = writeln!(section, "    \"{name}\": {:.3},", ns as f64 / 1e6);
    }
    let _ = writeln!(section, "    \"busy_ms\": {:.3},", busy_ns as f64 / 1e6);
    let _ = writeln!(section, "    \"categories\": {{");
    for (i, s) in summary.iter().enumerate() {
        let comma = if i + 1 == summary.len() { "" } else { "," };
        let _ = writeln!(
            section,
            "      \"{}\": {{ \"count\": {}, \"total_ms\": {:.3}, \"max_us\": {:.1} }}{comma}",
            s.cat.as_str(),
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e3
        );
    }
    section.push_str("    }\n  }");
    bench::merge_json_section("BENCH_fmm.json", "trace", &section);
    println!("merged \"trace\" into BENCH_fmm.json");
}
