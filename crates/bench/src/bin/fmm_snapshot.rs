//! Measured FMM throughput snapshot → `BENCH_fmm.json`.
//!
//! Times the real solver (not the performance model) on the
//! `single_star` scenario tree at level 2: the serial walk against
//! `solve_parallel` at 1, 2 and 4 workers, in processed sub-grids per
//! second (the paper's throughput metric). The full worker→throughput
//! curve is recorded (`speedup_vs_serial` per worker count — a single
//! "speedup at 4 threads" number hid the fact that *every* parallel
//! row used to lose to serial), plus per-category task-span maxima
//! from a traced solve (the chunking target: no monolithic
//! `fmm/same-level` task), the GPU/CPU kernel-launch split through the
//! §5.1 routing, and the scratch-pool hit rate.
//!
//! ```sh
//! cargo run --release -p bench --bin fmm_snapshot
//! ```
//!
//! The speedup rows only reflect parallel scaling when the host has
//! at least as many CPUs as workers; `host_cpus` is recorded so a
//! 1-CPU CI box's numbers aren't mistaken for a scaling regression.
//! Bit-identity of the parallel solve is asserted on every run.

use amt::trace::TraceSession;
use amt::Runtime;
use gravity::gpu::GpuContext;
use gravity::solver::FmmSolver;
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::QueuePolicy;
use octotiger::scenario::Scenario;
use octree::tree::Octree;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn star_tree() -> Arc<Octree> {
    Arc::new(Scenario::single_star(2).tree)
}

/// Time `f` over `iters` runs after one warm-up; returns seconds/run.
fn time_per_run(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1); // 0 iterations would divide to NaN in the JSON
    let tree = star_tree();
    let leaves = tree.leaf_count() as f64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("FMM throughput snapshot (single_star level 2, {leaves} sub-grids/solve)");
    println!("host CPUs: {host_cpus}, {iters} timed iterations per row");
    println!("{}", "-".repeat(64));

    // Serial reference.
    let solver = Arc::new(FmmSolver::new(0.5));
    let chunk_cells = solver.chunk_cells();
    let serial_s = time_per_run(iters, || {
        let f = solver.solve(&tree);
        assert!(f.interactions > 0);
    });
    let serial_rate = leaves / serial_s;
    println!("{:<28} {:>12.1} sub-grids/s", "serial", serial_rate);

    // Parallel at 1, 2, 4 workers (reusing the same pooled solver).
    let reference = solver.solve(&tree);
    let mut thread_rates = Vec::new();
    let mut cpu_rt = None;
    for threads in [1usize, 2, 4] {
        let rt = Runtime::new(threads);
        let par_s = time_per_run(iters, || {
            let f = solver.solve_parallel(&tree, &rt);
            assert_eq!(f.interactions, reference.interactions);
        });
        let rate = leaves / par_s;
        println!(
            "{:<28} {:>12.1} sub-grids/s  ({:.2}x serial)",
            format!("parallel, {threads} threads"),
            rate,
            rate / serial_rate
        );
        thread_rates.push((threads, rate));
        cpu_rt = Some(rt);
    }
    let cpu_rt = cpu_rt.expect("thread loop ran");

    // Per-category task spans of one traced 4-worker solve: with the
    // same-level pass chunked, the longest `fmm/same-level` task must
    // be a slab, not a whole node.
    let session = TraceSession::begin();
    let traced = solver.solve_parallel(&tree, &cpu_rt);
    assert_eq!(traced.interactions, reference.interactions);
    let trace = session.end();
    let spans: Vec<_> = trace
        .summary()
        .into_iter()
        .filter(|s| s.count > 0 && s.cat.as_str().starts_with("fmm/"))
        .collect();
    println!("{}", "-".repeat(64));
    println!(
        "{:<22} {:>8} {:>12} {:>14}",
        "task spans (4 wk)", "count", "total ms", "max span µs"
    );
    for s in &spans {
        println!(
            "{:<22} {:>8} {:>12.3} {:>14.1}",
            s.cat.as_str(),
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e3
        );
    }

    // Launch split through the simulated GPU (P100, 4 streams over 4
    // workers, CPU fallback when the worker's streams are busy).
    let dev = Device::new(DeviceSpec::p100(), 4);
    let gpu_solver = Arc::new(FmmSolver::with_gpu(
        0.5,
        GpuContext::new(&dev, 4, QueuePolicy::CpuFallback),
    ));
    let rt = Runtime::new(4);
    let routed = gpu_solver.solve_parallel(&tree, &rt);
    assert_eq!(routed.interactions, reference.interactions);
    let stats = gpu_solver.gpu().unwrap().stats();
    // The solver publishes its counters into the runtime's metrics
    // registry; bench bins read them back through `snapshot()` rather
    // than poking solver internals.
    let gpu_snap = rt.metrics().snapshot();
    let launches_gpu = gpu_snap.get("fmm/kernels/gpu").copied().unwrap_or(0);
    let launches_cpu = gpu_snap.get("fmm/kernels/cpu").copied().unwrap_or(0);
    println!("{}", "-".repeat(64));
    println!(
        "launch split (1 solve): {launches_gpu} GPU / {launches_cpu} CPU  ({:.1}% on GPU)",
        100.0 * stats.gpu_fraction()
    );

    let cpu_snap = cpu_rt.metrics().snapshot();
    let hits = cpu_snap.get("fmm/scratch_hits").copied().unwrap_or(0);
    let misses = cpu_snap.get("fmm/scratch_misses").copied().unwrap_or(0);
    let chunks = cpu_snap.get("fmm/chunks").copied().unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "scratch pool: {hits} hits / {misses} misses  ({:.1}% hit rate)",
        100.0 * hit_rate
    );
    println!("chunk size: {chunk_cells} cells ({chunks} chunk tasks over the timed solves)");

    // Hand-rolled JSON (no serde_json in the offline workspace).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"subgrids_per_solve\": {leaves},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"chunk_cells\": {chunk_cells},");
    let _ = writeln!(json, "  \"serial_subgrids_per_sec\": {serial_rate:.2},");
    json.push_str("  \"parallel_subgrids_per_sec\": {");
    for (i, (threads, rate)) in thread_rates.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{threads}\": {rate:.2}");
    }
    json.push_str("},\n");
    json.push_str("  \"speedup_vs_serial\": {");
    for (i, (threads, rate)) in thread_rates.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{threads}\": {:.3}", rate / serial_rate);
    }
    json.push_str("},\n");
    json.push_str("  \"task_spans\": {\n");
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 == spans.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"count\": {}, \"total_ms\": {:.3}, \"max_task_span_us\": {:.1} }}{comma}",
            s.cat.as_str(),
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e3
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"chunk_tasks\": {chunks},");
    let _ = writeln!(json, "  \"kernel_launches_gpu\": {launches_gpu},");
    let _ = writeln!(json, "  \"kernel_launches_cpu\": {launches_cpu},");
    let _ = writeln!(
        json,
        "  \"gpu_launch_fraction\": {:.4},",
        stats.gpu_fraction()
    );
    let _ = writeln!(json, "  \"scratch_hits\": {hits},");
    let _ = writeln!(json, "  \"scratch_misses\": {misses},");
    let _ = writeln!(json, "  \"scratch_hit_rate\": {hit_rate:.4}");
    json.push_str("}\n");
    std::fs::write("BENCH_fmm.json", &json).expect("write BENCH_fmm.json");
    println!("{}", "-".repeat(64));
    println!("wrote BENCH_fmm.json");
}
