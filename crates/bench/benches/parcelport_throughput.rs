//! In-process parcelport comparison: two-sided MPI-style vs one-sided
//! libfabric-style transports moving halo-sized payloads. The
//! structural differences the paper attributes its gains to — payload
//! copies and a locked progress engine vs zero-copy delivery and
//! lock-free completion queues — show up directly as throughput.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcelport::cluster::Transport;
use parcelport::libfabric_sim::LibfabricTransport;
use parcelport::mpi_sim::MpiTransport;
use parcelport::parcel::{ActionId, Parcel};
use amt::GlobalId;
use std::hint::black_box;
use std::sync::Arc;

fn pump(transport: &dyn Transport, payload: &Bytes, n: usize) {
    for i in 0..n {
        transport.send(
            0,
            Parcel {
                dest_locality: 1,
                dest_component: GlobalId(i as u64),
                action: ActionId(1),
                payload: payload.clone(),
            },
        );
    }
    // Drain: the receiver polls; for the two-sided transport the sender
    // side must also make progress (rendezvous handshakes).
    while transport.in_flight() > 0 {
        transport.progress(1);
        transport.progress(0);
    }
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("parcelport");
    group.sample_size(20);
    // A face halo of one sub-grid: 3x8x8 cells x 14 fields x 8 B = 21.5 KB
    // (eager-path for MPI), and a full sub-grid restart payload of
    // 230 KB (rendezvous-path).
    for (label, size) in [("halo_21k", 21_504usize), ("subgrid_230k", 230_496)] {
        let payload = Bytes::from(vec![0xABu8; size]);
        group.bench_with_input(BenchmarkId::new("mpi_two_sided", label), &payload, |b, p| {
            let t = MpiTransport::new(2);
            t.set_delivery(0, Arc::new(|_p| {}));
            t.set_delivery(1, Arc::new(|p| {
                black_box(p.payload.len());
            }));
            b.iter(|| pump(&t, p, 64))
        });
        group.bench_with_input(
            BenchmarkId::new("libfabric_one_sided", label),
            &payload,
            |b, p| {
                let t = LibfabricTransport::new(2);
                t.set_delivery(0, Arc::new(|_p| {}));
                t.set_delivery(1, Arc::new(|p| {
                    black_box(p.payload.len());
                }));
                b.iter(|| pump(&t, p, 64))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
