//! AMT runtime overhead benchmarks: task spawn/steal throughput and
//! futurization (continuation-chain) cost — the per-task overheads the
//! paper's "billions of HPX tasks" design depends on being small.

use amt::{make_ready_future, when_all, Runtime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_amt(c: &mut Criterion) {
    let mut group = c.benchmark_group("amt");
    group.sample_size(10);

    group.bench_function("spawn_10k_tasks", |b| {
        let rt = Runtime::new(4);
        b.iter(|| {
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..10_000 {
                let c = Arc::clone(&counter);
                rt.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            rt.wait_quiescent();
            black_box(counter.load(Ordering::Relaxed))
        })
    });

    group.bench_function("continuation_chain_1k", |b| {
        let rt = Runtime::new(2);
        let sched = Arc::clone(rt.scheduler());
        b.iter(|| {
            let mut f = make_ready_future(0u64);
            for _ in 0..1000 {
                f = f.then(&sched, |v| v + 1);
            }
            black_box(f.get_help(&sched))
        })
    });

    group.bench_function("when_all_fanin_1k", |b| {
        let rt = Runtime::new(4);
        let sched = Arc::clone(rt.scheduler());
        b.iter(|| {
            let futures: Vec<_> = (0..1000)
                .map(|i| rt.async_call(move || i * 2))
                .collect();
            black_box(when_all(&sched, futures).get_help(&sched))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_amt);
criterion_main!(benches);
