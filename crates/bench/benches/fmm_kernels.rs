//! **E6 — the §4.3 ablation**: the stencil-based struct-of-arrays FMM
//! kernels against the legacy array-of-structs interaction-list
//! implementation. The paper measured a total-application speedup of
//! 1.90–2.22× on AVX512 and 1.23–1.35× on AVX2 from this rewrite; here
//! the two kernel implementations (identical math, different data
//! layout and lookup structure) are timed head to head.
//!
//! Also times the two §4.3 kernels individually: monopole–monopole
//! (12 flops/interaction) and the combined multipole kernel
//! (455 flops/interaction) — the paper's Table 2 hotspots.

use criterion::{criterion_group, criterion_main, Criterion};
use gravity::interaction_list::{run_monopole, InteractionList};
use gravity::kernels::{gather_moments, monopole_kernel, multipole_kernel, MomentGrid};
use gravity::multipole::Multipole;
use gravity::stencil::Stencil;
use std::hint::black_box;
use util::vec3::Vec3;

fn monopole_grid(width: i32) -> MomentGrid {
    gather_moments(width, |i, j, k| {
        Some(Multipole::monopole(
            1.0 + ((i * 3 + j * 5 + k * 7).rem_euclid(11)) as f64 * 0.1,
            Vec3::new(i as f64, j as f64, k as f64),
        ))
    })
}

fn multipole_grid(width: i32) -> MomentGrid {
    gather_moments(width, |i, j, k| {
        Some(Multipole {
            m: 1.0 + ((i + j + k).rem_euclid(5)) as f64 * 0.2,
            com: Vec3::new(i as f64 + 0.02, j as f64 - 0.01, k as f64),
            q: [
                0.01 * (i.rem_euclid(3)) as f64,
                0.01 * (j.rem_euclid(3)) as f64,
                0.02,
                0.003,
                -0.001,
                0.002,
            ],
        })
    })
}

fn bench_kernels(c: &mut Criterion) {
    let stencil = Stencil::octotiger();
    let mono = monopole_grid(stencil.width());
    let multi = multipole_grid(stencil.width());

    let mut group = c.benchmark_group("fmm_same_level");
    group.sample_size(10);

    // The two §4.3 kernels, stencil/SoA path (one full sub-grid launch).
    group.bench_function("monopole_stencil_soa", |b| {
        b.iter(|| black_box(monopole_kernel(&mono, stencil.offsets())))
    });
    group.bench_function("multipole_stencil_soa", |b| {
        b.iter(|| black_box(multipole_kernel(&multi, stencil.offsets())))
    });

    // The legacy interaction-list/AoS baseline (same math; §4.3 says the
    // stencil/SoA rewrite sped the application up 1.9-2.2x on AVX512).
    let il_mono = InteractionList::build(&mono, &stencil);
    let il_multi = InteractionList::build(&multi, &stencil);
    group.bench_function("monopole_interaction_list_aos", |b| {
        b.iter(|| black_box(run_monopole(&il_mono)))
    });
    group.bench_function("multipole_interaction_list_aos", |b| {
        b.iter(|| black_box(il_multi.run()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
