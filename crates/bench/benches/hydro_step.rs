//! Hydro solver micro-benchmarks: the per-sub-grid PPM + KT flux sweep
//! (the non-FMM part of the Table 2 runtimes) and a full driver step on
//! a small tree.

use criterion::{criterion_group, criterion_main, Criterion};
use hydro::eos::IdealGas;
use hydro::step::HydroStepper;
use octotiger::{Scenario, Simulation};
use octree::subgrid::{Field, SubGrid};
use std::hint::black_box;
use util::vec3::Vec3;

fn filled_grid() -> SubGrid {
    let eos = IdealGas::monatomic();
    let mut g = SubGrid::new();
    let indexer = g.indexer();
    for (i, j, k) in indexer.all() {
        let rho = 1.0 + 0.1 * ((i + 2 * j + 3 * k).rem_euclid(7)) as f64;
        let v = Vec3::new(0.1 * i as f64, -0.05 * j as f64, 0.02 * k as f64);
        let e = 1.0 + 0.2 * ((i * j).rem_euclid(5)) as f64;
        g.set(Field::Rho, i, j, k, rho);
        g.set(Field::Sx, i, j, k, rho * v.x);
        g.set(Field::Sy, i, j, k, rho * v.y);
        g.set(Field::Sz, i, j, k, rho * v.z);
        g.set(Field::Egas, i, j, k, e + 0.5 * rho * v.norm2());
        g.set(Field::Tau, i, j, k, eos.tau_from_e(e));
    }
    g
}

fn bench_hydro(c: &mut Criterion) {
    let stepper = HydroStepper::new(IdealGas::monatomic());
    let grid = filled_grid();

    let mut group = c.benchmark_group("hydro");
    group.sample_size(20);
    group.bench_function("subgrid_rhs_ppm_kt", |b| {
        b.iter(|| black_box(stepper.dudt(&grid, 0.1)))
    });
    group.bench_function("max_signal_speed", |b| {
        b.iter(|| black_box(stepper.max_signal_speed(&grid)))
    });
    group.finish();

    let mut group = c.benchmark_group("driver");
    group.sample_size(10);
    group.bench_function("sod_step_level1", |b| {
        let mut sim = Simulation::new(Scenario::sod(1));
        b.iter(|| black_box(sim.step()))
    });
    group.finish();
}

criterion_group!(benches, bench_hydro);
criterion_main!(benches);
