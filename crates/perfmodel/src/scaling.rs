//! The *closed-form* distributed scaling model — the original Figure
//! 2/3 regeneration, kept as a cross-check.
//!
//! This model's [`HandCalibration`] constants are hand-entered
//! engineering estimates. It is superseded by the trace-calibrated
//! discrete-event co-simulation in [`crate::des`], whose
//! [`crate::calibrate::Calibration`] is extracted from measured traces
//! and counters; the `fig23_scaleout` bench (and REPRODUCTION.md) use
//! that path. This module remains useful as an analytic sanity check —
//! both models must agree on the qualitative shapes — and as the home
//! of the shared [`ScalingPoint`] output type and the
//! [`v1309_structure_tree`] builder.
//!
//! The model runs the *real* octree decomposition: the V1309 refinement
//! rule builds the structure tree for each level, the SFC partitioner
//! assigns leaves to N localities, and the halo census counts the
//! actual remote messages/bytes each locality exchanges per step. On
//! top of that sit per-step cost terms:
//!
//! * **compute**: `subgrids × t_subgrid`, with a grain-size penalty
//!   when a locality holds too few sub-grids to keep its cores and GPU
//!   busy ("too little work per node", §6.2);
//! * **communication CPU**: per-message processing costs from the
//!   transport model ([`parcelport::NetParams`]), times an
//!   *amplification factor* standing in for the tree-hierarchy traffic
//!   (the FMM exchanges at every level, not just leaf halos) and
//!   scheduling imbalance — the effective constants are calibrated in
//!   EXPERIMENTS.md;
//! * **wire**: bytes / bandwidth + latency round-trips, overlapped with
//!   compute (HPX hides what it can: only the excess is exposed);
//! * **polling tax**: the libfabric scheduler-loop polling cost that
//!   makes Fig. 3 dip slightly below 1.0 at small node counts.

use octree::refine::BinaryRefine;
use octree::sfc::{halo_census, partition};
use octree::tree::Octree;
use parcelport::netmodel::{NetParams, TransportKind};

/// Hand-entered calibration constants of the closed-form step-cost
/// model. **Legacy**: the scale-out co-simulation ([`crate::des`])
/// takes no hand-entered kernel constants — its
/// [`crate::calibrate::Calibration`] is extracted from measured data.
#[derive(Debug, Clone, Copy)]
pub struct HandCalibration {
    /// Wall-clock per sub-grid per step on one full node, µs.
    pub t_subgrid_us: f64,
    /// Grain-size penalty scale (sub-grids needed for full overlap).
    pub grain_subgrids: f64,
    /// Dependent halo-exchange rounds per step (RK stages × solvers).
    pub rounds: f64,
    /// Amplification of the leaf-halo message census standing in for
    /// per-level FMM traffic and imbalance.
    pub msg_amplification: f64,
    /// Worker threads per node (Piz Daint: 12).
    pub threads: usize,
    /// Base per-message cost independent of transport, µs (serialization
    /// and scheduling work both transports share).
    pub msg_base_us: f64,
}

impl Default for HandCalibration {
    fn default() -> HandCalibration {
        HandCalibration {
            t_subgrid_us: 4600.0,
            grain_subgrids: 3.0,
            rounds: 4.0,
            msg_amplification: 350.0,
            threads: 12,
            msg_base_us: 860.0,
        }
    }
}

/// One point of the Figure 2/3 data (produced by both the closed-form
/// model and the [`crate::des`] co-simulation).
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Refinement level of the simulated tree.
    pub level: u8,
    /// Locality (node) count.
    pub nodes: usize,
    /// Simulated transport.
    pub kind: TransportKind,
    /// Total sub-grids in the decomposition.
    pub subgrids: usize,
    /// Modelled wall time per step, seconds.
    pub step_time_s: f64,
    /// Processed sub-grids per second — the paper's metric.
    pub subgrids_per_second: f64,
}

/// Build the structure tree for a given V1309 refinement level.
pub fn v1309_structure_tree(level: u8) -> Octree {
    let rule = BinaryRefine::v1309(level);
    let mut tree = Octree::structure_only(octree::geometry::Domain::v1309());
    tree.refine_where(level, |d, k| rule.should_refine(d, k));
    tree
}

/// Model one (tree, nodes, transport) point.
pub fn simulate_scaling(
    tree: &Octree,
    nodes: usize,
    kind: TransportKind,
    calib: &HandCalibration,
) -> ScalingPoint {
    assert!(nodes >= 1);
    let params = NetParams::for_kind(kind);
    let leaves = tree.leaves();
    let total_subgrids = leaves.len();
    let assignment = partition(&leaves, nodes);
    let census = halo_census(tree, &assignment, nodes);

    let mut worst = 0.0f64;
    for loc in &census.per_locality {
        let s = loc.subgrids as f64;
        if s == 0.0 {
            continue;
        }
        // Compute with grain penalty and the polling tax.
        let compute =
            s * calib.t_subgrid_us * (1.0 + calib.grain_subgrids / s) * (1.0 + params.polling_tax);
        // Per-message CPU costs (spread over the node's workers is
        // already folded into the transport's contention model).
        let per_msg = calib.msg_base_us
            + (params.recv_cpu_us(calib.threads) + params.send_cpu_us(calib.threads))
                * calib.msg_amplification;
        let msgs = (loc.recv_msgs + loc.send_msgs) as f64 * calib.rounds;
        let comm_cpu = msgs * per_msg / calib.threads as f64;
        // Wire time: bandwidth + latency chains, overlapped with compute.
        let bytes = (loc.recv_bytes as f64) * calib.rounds;
        let wire = calib.rounds * params.latency_us * 8.0 + bytes / (params.bandwidth_gb_s * 1e3);
        let t = (compute + comm_cpu).max(wire);
        worst = worst.max(t);
    }
    let step_time_s = worst / 1e6;
    ScalingPoint {
        level: tree.max_level(),
        nodes,
        kind,
        subgrids: total_subgrids,
        step_time_s,
        subgrids_per_second: total_subgrids as f64 / step_time_s,
    }
}

/// Parallel efficiency of `point` against a reference throughput-per-
/// node (typically level 14 on 1 node).
///
/// ```
/// use parcelport::netmodel::TransportKind;
/// use perfmodel::scaling::{efficiency, ScalingPoint};
///
/// let p = ScalingPoint {
///     level: 14,
///     nodes: 4,
///     kind: TransportKind::Libfabric,
///     subgrids: 100,
///     step_time_s: 1.0,
///     subgrids_per_second: 100.0,
/// };
/// // 100 sg/s over 4 nodes against a 25 sg/s 1-node reference: ideal.
/// assert!((efficiency(&p, 25.0) - 1.0).abs() < 1e-12);
/// ```
pub fn efficiency(point: &ScalingPoint, reference_throughput_1node: f64) -> f64 {
    point.subgrids_per_second / (reference_throughput_1node * point.nodes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> Octree {
        v1309_structure_tree(12)
    }

    #[test]
    fn throughput_grows_then_saturates() {
        let tree = small_tree();
        let calib = HandCalibration::default();
        let p1 = simulate_scaling(&tree, 1, TransportKind::Libfabric, &calib);
        // 2 nodes must clearly beat 1 node (the SFC cut at N = 2 slices
        // straight through the dense binary core, so the surcharge is
        // at its relative worst here).
        let p2 = simulate_scaling(&tree, 2, TransportKind::Libfabric, &calib);
        assert!(
            p2.subgrids_per_second > 1.3 * p1.subgrids_per_second,
            "2-node speedup {}",
            p2.subgrids_per_second / p1.subgrids_per_second
        );
        // Strong scaling tails off: per-node efficiency at 256 nodes is
        // far below the 1-node value.
        let p256 = simulate_scaling(&tree, 256, TransportKind::Libfabric, &calib);
        let eff = p256.subgrids_per_second / (256.0 * p1.subgrids_per_second);
        assert!(eff < 0.6, "efficiency at 256 nodes should collapse, got {eff}");
        assert!(
            p256.subgrids_per_second > p1.subgrids_per_second,
            "but absolute throughput still exceeds one node"
        );
    }

    #[test]
    fn libfabric_beats_mpi_at_scale_but_not_at_one_node() {
        let tree = small_tree();
        let calib = HandCalibration::default();
        // One node: no remote messages; polling tax makes libfabric a
        // hair *slower* (the Fig. 3 dip below 1.0).
        let m1 = simulate_scaling(&tree, 1, TransportKind::Mpi, &calib);
        let l1 = simulate_scaling(&tree, 1, TransportKind::Libfabric, &calib);
        let ratio1 = l1.subgrids_per_second / m1.subgrids_per_second;
        assert!(ratio1 < 1.0, "1-node ratio {ratio1} should dip below 1");
        assert!(ratio1 > 0.95, "the dip is slight: {ratio1}");
        // Many nodes: communication dominates and libfabric wins big.
        let mn = simulate_scaling(&tree, 256, TransportKind::Mpi, &calib);
        let ln = simulate_scaling(&tree, 256, TransportKind::Libfabric, &calib);
        let ratio_n = ln.subgrids_per_second / mn.subgrids_per_second;
        assert!(
            ratio_n > 1.5,
            "at scale libfabric must clearly win: ratio {ratio_n}"
        );
    }

    #[test]
    fn ratio_grows_with_node_count() {
        // The Fig. 3 shape: the libfabric/MPI ratio increases with
        // node count (communication share grows).
        let tree = small_tree();
        let calib = HandCalibration::default();
        let ratio_at = |nodes: usize| {
            let m = simulate_scaling(&tree, nodes, TransportKind::Mpi, &calib);
            let l = simulate_scaling(&tree, nodes, TransportKind::Libfabric, &calib);
            l.subgrids_per_second / m.subgrids_per_second
        };
        let r4 = ratio_at(4);
        let r64 = ratio_at(64);
        let r256 = ratio_at(256);
        assert!(r64 > r4, "ratio must grow into the comm-bound regime: {r4} -> {r64}");
        // Near full saturation the grain penalty (transport-neutral)
        // flattens the curve; it must stay clearly above 2.
        assert!(r256 > 2.0, "ratio at scale {r256}");
    }

    #[test]
    fn weak_scaling_across_levels() {
        // A deeper tree on proportionally more nodes should hold its
        // efficiency reasonably (the paper's "weak scaling is clearly
        // very good").
        let calib = HandCalibration::default();
        let t9 = v1309_structure_tree(10);
        let t10 = v1309_structure_tree(10);
        let p9 = simulate_scaling(&t9, 8, TransportKind::Libfabric, &calib);
        let growth = t10.leaf_count() as f64 / t9.leaf_count() as f64;
        let nodes10 = (8.0 * growth).round() as usize;
        let p10 = simulate_scaling(&t10, nodes10, TransportKind::Libfabric, &calib);
        let eff9 = p9.subgrids_per_second / 8.0;
        let eff10 = p10.subgrids_per_second / nodes10 as f64;
        assert!(
            eff10 > 0.4 * eff9,
            "weak scaling collapsed: {eff10} vs {eff9}"
        );
    }

    #[test]
    fn efficiency_helper() {
        let p = ScalingPoint {
            level: 14,
            nodes: 4,
            kind: TransportKind::Libfabric,
            subgrids: 100,
            step_time_s: 1.0,
            subgrids_per_second: 100.0,
        };
        assert!((efficiency(&p, 25.0) - 1.0).abs() < 1e-12);
        assert!((efficiency(&p, 50.0) - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod debug_scaling {
    use super::*;
    #[test]
    fn print_points() {
        let tree = v1309_structure_tree(12);
        println!("leaves = {}", tree.leaf_count());
        let calib = HandCalibration::default();
        for nodes in [1usize, 2, 4, 16, 64, 256] {
            let l = simulate_scaling(&tree, nodes, TransportKind::Libfabric, &calib);
            let m = simulate_scaling(&tree, nodes, TransportKind::Mpi, &calib);
            println!("N={nodes}: lf {:.1} sg/s (t={:.3}s)  mpi {:.1}  ratio {:.2}",
                l.subgrids_per_second, l.step_time_s, m.subgrids_per_second,
                l.subgrids_per_second / m.subgrids_per_second);
        }
    }
}
