//! Trace-calibrated discrete-event co-simulation of the full machine —
//! the scale-out model behind the reproduced Figures 2 and 3 (see
//! REPRODUCTION.md).
//!
//! Where [`crate::scaling`] evaluates a closed-form step-cost formula,
//! this module *runs* the machine: every simulated locality is a trio of
//! [`Component`] objects (a worker-pool core, a NIC, a CUDA-stream set)
//! cycling over a shared [`SimContext`] event queue. The workload is the
//! real octree decomposition — [`CommPattern::from_tree`] partitions the
//! actual V1309 structure tree with the SFC sharder and extracts the
//! leaf-halo push plan — and every cost constant comes from a measured
//! [`Calibration`] (kernel-duration histograms, parcel-size
//! distributions, launch-aggregation collapse), not from hand-entered
//! numbers. The only engineering estimate left is the Aries wire model
//! ([`NetParams`]), which this repro-band host cannot measure.
//!
//! # Per-step event flow
//!
//! 1. The barrier releases all localities at a common time `T`
//!    ([`Payload::StepStart`] to every component).
//! 2. Each **core** samples its per-pass compute wall time from the
//!    calibrated histograms: pass wall = max(pass work ÷ effective
//!    threads, longest sampled span) — the critical-path floor that
//!    produces the paper's "too little work per node" roll-off.
//! 3. Each **stream set** charges `ceil(items / collapse) ×
//!    launch_overhead` for the aggregated GPU launches, overlapped with
//!    compute.
//! 4. Each **NIC** serializes its outbound channels: per-message send
//!    CPU is drawn from the *measured* `parcel/send` span-duration
//!    histogram (same host clock as the kernel histograms, so compute
//!    and communication stay in one unit system) and scaled by the
//!    NetParams ratio between the simulated and the measured transport
//!    — the wire model supplies only *relative* transport cost. The
//!    channel's sampled bytes go on the wire; the destination NIC
//!    serializes receive processing (measured `parcel/recv` durations,
//!    same scaling) and reports halo completion.
//! 5. A locality arrives at the barrier when compute ∧ streams ∧ halos
//!    are done; the barrier release adds a `2⌈log₂N⌉·latency` allreduce
//!    (the dt reduction).
//!
//! Determinism: the event queue is totally ordered by (time bits,
//! sequence number) and every component owns its own splitmix64 stream
//! seeded from `(seed, component id)`, so a `(pattern, calibration,
//! seed)` triple always yields bit-identical [`ScalingPoint`]s.
//!
//! # Example
//!
//! ```
//! use parcelport::netmodel::TransportKind;
//! use perfmodel::calibrate::Calibration;
//! use perfmodel::des::{simulate_scaleout, CommPattern, DesOpts};
//! use perfmodel::scaling::v1309_structure_tree;
//!
//! let tree = v1309_structure_tree(8);
//! let pattern = CommPattern::from_tree(&tree, 4).unwrap();
//! // Synthetic calibration: 3 spans of 200 µs per sub-grid per step on
//! // 12 threads. The real bench extracts this from a traced solve.
//! let calib = Calibration::synthetic(200_000, 3.0, 12);
//! let opts = DesOpts { steps: 2, seed: 42 };
//! let r = simulate_scaleout(&pattern, TransportKind::Libfabric, &calib, &opts).unwrap();
//! assert_eq!(r.point.nodes, 4);
//! assert!(r.point.step_time_s > 0.0);
//! assert_eq!(r.step_times_s.len(), 2);
//! ```

use crate::calibrate::{Calibration, KernelCal};
use crate::scaling::ScalingPoint;
use amt::trace::DurationHistogram;
use octree::shard::ShardMap;
use octree::tree::Octree;
use parcelport::netmodel::{NetParams, TransportKind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use util::error::{Error, Result};

/// A tiny deterministic splitmix64 stream; every component owns one so
/// simulation results are independent of event-dispatch details.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed a new stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Communication pattern: the real tree decomposition, reduced to what
// the DES needs (per-locality sub-grid counts and the channel census).
// ---------------------------------------------------------------------

/// One static src → dst halo channel and its leaf-halo messages per step.
#[derive(Debug, Clone, Copy)]
pub struct ChannelSpec {
    /// Sending locality.
    pub src: u32,
    /// Receiving locality.
    pub dst: u32,
    /// Leaf-halo messages this channel carries per step (before the
    /// measured amplification factor is applied).
    pub msgs: u64,
}

/// The simulated topology: the SFC partition of a real structure tree
/// and its halo-exchange channel census.
#[derive(Debug, Clone)]
pub struct CommPattern {
    /// Refinement level of the decomposed tree.
    pub level: u8,
    /// Simulated locality count.
    pub localities: usize,
    /// Total sub-grids (tree leaves).
    pub subgrids: usize,
    /// Sub-grids owned by each locality.
    pub owned: Vec<u32>,
    /// All src → dst halo channels.
    pub channels: Vec<ChannelSpec>,
    /// Inbound channel count per locality.
    pub inbound: Vec<u32>,
    /// Outbound channel indices (into [`CommPattern::channels`]) per
    /// locality.
    pub outbound: Vec<Vec<u32>>,
}

impl CommPattern {
    /// Partition `tree` over `localities` shards with the real SFC
    /// sharder and extract the halo push plan as a channel census.
    pub fn from_tree(tree: &Octree, localities: usize) -> Result<CommPattern> {
        if localities == 0 {
            return Err(Error::Model("scale-out needs at least one locality".into()));
        }
        let map = ShardMap::partition(tree, localities)?;
        let plan = map.halo_push_plan(tree);
        let mut owned = Vec::with_capacity(localities);
        for shard in 0..localities {
            owned.push(map.owned(shard as u32).len() as u32);
        }
        let mut channels = Vec::new();
        let mut inbound = vec![0u32; localities];
        let mut outbound = vec![Vec::new(); localities];
        for (src, by_dst) in plan.iter().enumerate() {
            for (&dst, keys) in by_dst {
                outbound[src].push(channels.len() as u32);
                inbound[dst as usize] += 1;
                channels.push(ChannelSpec { src: src as u32, dst, msgs: keys.len() as u64 });
            }
        }
        Ok(CommPattern {
            level: tree.max_level(),
            localities,
            subgrids: map.n_leaves(),
            owned,
            channels,
            inbound,
            outbound,
        })
    }

    /// Total leaf-halo messages per step across all channels.
    pub fn total_msgs_per_step(&self) -> u64 {
        self.channels.iter().map(|c| c.msgs).sum()
    }
}

// ---------------------------------------------------------------------
// Event queue and shared context.
// ---------------------------------------------------------------------

/// An event payload delivered to a [`Component`].
#[derive(Debug, Clone, Copy)]
pub enum Payload {
    /// The barrier released a new step; every component resets.
    StepStart,
    /// A core finished its sampled compute for the step.
    ComputeDone,
    /// A stream set drained its aggregated launch queue (sent to the
    /// owning core).
    StreamsDone,
    /// A NIC finished receiving and processing every inbound channel
    /// (sent to the owning core).
    HaloDone,
    /// A channel's payload arrived at the destination NIC; processing
    /// it costs `recv_cpu_us` of serialized NIC time.
    Deliver {
        /// Receive-side CPU microseconds for the whole channel.
        recv_cpu_us: f64,
    },
    /// A locality completed compute ∧ streams ∧ halos (sent to the
    /// barrier).
    Arrive,
}

struct Event {
    time_us: f64,
    seq: u64,
    target: usize,
    payload: Payload,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.time_us.to_bits() == other.time_us.to_bits() && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
    // first and ties resolve by insertion order — fully deterministic.
    fn cmp(&self, other: &Event) -> Ordering {
        other
            .time_us
            .total_cmp(&self.time_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Aggregate cost accounting over a whole run (microseconds summed over
/// all localities and steps) — the breakdown REPRODUCTION.md reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesStats {
    /// Events dispatched.
    pub events: u64,
    /// Worker-pool compute wall time.
    pub compute_us: f64,
    /// GPU launch-overhead wall time.
    pub launch_us: f64,
    /// Send-side per-message CPU time.
    pub send_cpu_us: f64,
    /// Receive-side per-message CPU time.
    pub recv_cpu_us: f64,
    /// Wire (latency + bandwidth + copy) time.
    pub wire_us: f64,
}

/// The shared simulation context every [`Component`] cycles over: the
/// clock, the totally-ordered event queue, and run statistics.
pub struct SimContext {
    now_us: f64,
    seq: u64,
    queue: BinaryHeap<Event>,
    step_ends_us: Vec<f64>,
    /// Aggregate cost accounting, updated by components as they run.
    pub stats: DesStats,
}

impl SimContext {
    fn new() -> SimContext {
        SimContext {
            now_us: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            step_ends_us: Vec::new(),
            stats: DesStats::default(),
        }
    }

    /// The current simulated time, microseconds.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Schedule `payload` for component `target` at absolute time
    /// `at_us` (clamped to now — events cannot fire in the past).
    pub fn send(&mut self, target: usize, at_us: f64, payload: Payload) {
        let time_us = if at_us < self.now_us { self.now_us } else { at_us };
        self.queue.push(Event { time_us, seq: self.seq, target, payload });
        self.seq += 1;
    }
}

/// Static per-run parameters shared (immutably) by all components.
pub struct SimSpec {
    /// The wire/CPU cost model of the simulated transport.
    pub net: NetParams,
    /// Worker threads per locality.
    pub threads: f64,
    /// Measured worker utilization (divides effective thread count).
    pub utilization: f64,
    /// Calibrated kernel categories with at least one measured span.
    pub kernels: Vec<KernelCal>,
    /// Measured parcel payload size distribution, bytes.
    pub parcel_bytes: DurationHistogram,
    /// Measured per-parcel send CPU distribution, ns (host clock).
    pub parcel_send_cpu: DurationHistogram,
    /// Measured per-parcel receive CPU distribution, ns (host clock).
    pub parcel_recv_cpu: DurationHistogram,
    /// Simulated ÷ measured transport send-CPU ratio (NetParams): the
    /// measured per-parcel cost is the baseline, the wire model only
    /// supplies the *relative* cost of the other transport.
    pub send_scale: f64,
    /// Simulated ÷ measured transport receive-CPU ratio.
    pub recv_scale: f64,
    /// GPU work items per sub-grid per step.
    pub launch_items_per_subgrid: f64,
    /// Items per fused launch (measured aggregation collapse).
    pub agg_collapse: f64,
    /// Per-launch overhead, µs.
    pub launch_overhead_us: f64,
    /// Tree-allreduce cost of the barrier/dt-reduction, µs.
    pub allreduce_us: f64,
    /// Steps to simulate.
    pub steps: u32,
}

/// A simulated hardware object — a locality's worker-pool core, its
/// NIC, its CUDA-stream set, or the global barrier. The engine pops
/// events off the shared queue and hands each to its target component.
pub trait Component {
    /// React to `payload` at `ctx.now_us()`: update internal state and
    /// schedule follow-up events via [`SimContext::send`].
    fn handle(&mut self, payload: Payload, spec: &SimSpec, ctx: &mut SimContext);
}

// ---------------------------------------------------------------------
// The three per-locality components plus the barrier.
// ---------------------------------------------------------------------

const PARTS_PER_LOCALITY: u8 = 3; // compute + streams + halo

struct CoreComp {
    self_id: usize,
    barrier: usize,
    owned: u32,
    rng: SplitMix64,
    parts_pending: u8,
}

impl Component for CoreComp {
    fn handle(&mut self, payload: Payload, spec: &SimSpec, ctx: &mut SimContext) {
        match payload {
            Payload::StepStart => {
                self.parts_pending = PARTS_PER_LOCALITY;
                // Sample this step's compute: each calibrated pass runs
                // its drawn total work over the effective thread pool,
                // floored by the longest sampled span (critical path).
                let eff_threads = (spec.threads * spec.utilization).max(1e-9);
                let mut wall_ns = 0.0;
                for k in &spec.kernels {
                    let n = (k.events_per_subgrid_step * self.owned as f64).ceil() as u64;
                    if n == 0 {
                        continue;
                    }
                    let work_ns = k.hist.sample_sum(n, || self.rng.next_u64());
                    let mut span_max = 0.0f64;
                    for _ in 0..n.min(4) {
                        span_max = span_max.max(k.hist.sample(self.rng.next_u64()));
                    }
                    wall_ns += (work_ns / eff_threads).max(span_max);
                }
                let wall_us = wall_ns / 1e3 * (1.0 + spec.net.polling_tax);
                ctx.stats.compute_us += wall_us;
                ctx.send(self.self_id, ctx.now_us() + wall_us, Payload::ComputeDone);
            }
            Payload::ComputeDone | Payload::StreamsDone | Payload::HaloDone => {
                self.parts_pending -= 1;
                if self.parts_pending == 0 {
                    ctx.send(self.barrier, ctx.now_us(), Payload::Arrive);
                }
            }
            _ => {}
        }
    }
}

struct StreamComp {
    core: usize,
    owned: u32,
}

impl Component for StreamComp {
    fn handle(&mut self, payload: Payload, spec: &SimSpec, ctx: &mut SimContext) {
        if let Payload::StepStart = payload {
            let items = spec.launch_items_per_subgrid * self.owned as f64;
            let batches = (items / spec.agg_collapse.max(1.0)).ceil();
            let t = batches * spec.launch_overhead_us;
            ctx.stats.launch_us += t;
            ctx.send(self.core, ctx.now_us() + t, Payload::StreamsDone);
        }
    }
}

struct NicComp {
    core: usize,
    /// (destination NIC component id, amplified messages per step).
    outbound: Vec<(usize, u64)>,
    inbound_total: u32,
    pending: u32,
    busy_until_us: f64,
    rng: SplitMix64,
}

impl Component for NicComp {
    fn handle(&mut self, payload: Payload, spec: &SimSpec, ctx: &mut SimContext) {
        match payload {
            Payload::StepStart => {
                self.pending = self.inbound_total;
                // Serialize sends through the progress engine; each
                // channel's payload bytes are drawn from the measured
                // parcel-size distribution.
                let mut t = ctx.now_us();
                for i in 0..self.outbound.len() {
                    let (dst, msgs) = self.outbound[i];
                    let send_cpu = if spec.parcel_send_cpu.count() > 0 {
                        spec.parcel_send_cpu.sample_sum(msgs, || self.rng.next_u64()) / 1e3
                            * spec.send_scale
                    } else {
                        msgs as f64 * spec.net.send_cpu_us(spec.threads as usize)
                    };
                    t += send_cpu;
                    let bytes = spec.parcel_bytes.sample_sum(msgs, || self.rng.next_u64());
                    let mean = if msgs > 0 { bytes / msgs as f64 } else { 0.0 };
                    let mut wire = spec.net.latency_us
                        + bytes / (spec.net.bandwidth_gb_s * 1e3)
                        + spec.net.payload_copies as f64 * bytes
                            / (spec.net.copy_bandwidth_gb_s * 1e3);
                    if mean > spec.net.rendezvous_threshold as f64 {
                        wire += spec.net.rendezvous_trips as f64 * spec.net.latency_us;
                    }
                    ctx.stats.send_cpu_us += send_cpu;
                    ctx.stats.wire_us += wire;
                    let recv_cpu_us = if spec.parcel_recv_cpu.count() > 0 {
                        spec.parcel_recv_cpu.sample_sum(msgs, || self.rng.next_u64()) / 1e3
                            * spec.recv_scale
                    } else {
                        msgs as f64 * spec.net.recv_cpu_us(spec.threads as usize)
                    };
                    ctx.send(dst, t + wire, Payload::Deliver { recv_cpu_us });
                }
                self.busy_until_us = t;
                if self.inbound_total == 0 {
                    ctx.send(self.core, ctx.now_us(), Payload::HaloDone);
                }
            }
            Payload::Deliver { recv_cpu_us } => {
                self.busy_until_us = self.busy_until_us.max(ctx.now_us()) + recv_cpu_us;
                ctx.stats.recv_cpu_us += recv_cpu_us;
                self.pending -= 1;
                if self.pending == 0 {
                    ctx.send(self.core, self.busy_until_us, Payload::HaloDone);
                }
            }
            _ => {}
        }
    }
}

struct BarrierComp {
    n: usize,
    arrived: usize,
    step: u32,
}

impl Component for BarrierComp {
    fn handle(&mut self, payload: Payload, spec: &SimSpec, ctx: &mut SimContext) {
        if let Payload::Arrive = payload {
            self.arrived += 1;
            if self.arrived == self.n {
                self.arrived = 0;
                self.step += 1;
                let release = ctx.now_us() + spec.allreduce_us;
                ctx.step_ends_us.push(release);
                if self.step < spec.steps {
                    for target in 0..3 * self.n {
                        ctx.send(target, release, Payload::StepStart);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------

/// Run options for [`simulate_scaleout`].
#[derive(Debug, Clone, Copy)]
pub struct DesOpts {
    /// Steps to simulate (all steps count; the run is deterministic, so
    /// no warm-up discard is needed).
    pub steps: u32,
    /// Seed for every component's splitmix64 stream.
    pub seed: u64,
}

impl Default for DesOpts {
    fn default() -> DesOpts {
        DesOpts { steps: 4, seed: 0x0c70_717e_5007 }
    }
}

/// The outcome of one `(pattern, transport)` co-simulation.
#[derive(Debug, Clone)]
pub struct ScaleoutResult {
    /// The Figure-2/3 data point (same shape as the closed-form model's
    /// output, so downstream plotting/gating code is shared).
    pub point: ScalingPoint,
    /// Per-step wall times, seconds.
    pub step_times_s: Vec<f64>,
    /// Aggregate cost breakdown over the whole run.
    pub stats: DesStats,
}

/// Run the discrete-event co-simulation of `pattern` on transport
/// `kind`, with every workload constant taken from `calib`.
///
/// Returns [`Error::Model`] if the pattern is empty or the calibration
/// has no measured kernels.
pub fn simulate_scaleout(
    pattern: &CommPattern,
    kind: TransportKind,
    calib: &Calibration,
    opts: &DesOpts,
) -> Result<ScaleoutResult> {
    let n = pattern.localities;
    if n == 0 || pattern.subgrids == 0 {
        return Err(Error::Model("empty communication pattern".into()));
    }
    let kernels: Vec<KernelCal> =
        calib.kernels.iter().filter(|k| k.hist.count() > 0).cloned().collect();
    if kernels.is_empty() {
        return Err(Error::Model("calibration has no measured kernels".into()));
    }
    if opts.steps == 0 {
        return Err(Error::Model("need at least one simulated step".into()));
    }
    let net = NetParams::for_kind(kind);
    let measured_net = NetParams::for_kind(calib.measured_transport);
    let threads = calib.threads;
    let send_scale = net.send_cpu_us(threads) / measured_net.send_cpu_us(threads);
    let recv_scale = net.recv_cpu_us(threads) / measured_net.recv_cpu_us(threads);
    let allreduce_us = 2.0 * (n as f64).log2().ceil().max(0.0) * net.latency_us;
    let spec = SimSpec {
        net,
        threads: calib.threads as f64,
        utilization: calib.utilization,
        kernels,
        parcel_bytes: calib.parcel_bytes.clone(),
        parcel_send_cpu: calib.parcel_send_cpu.clone(),
        parcel_recv_cpu: calib.parcel_recv_cpu.clone(),
        send_scale,
        recv_scale,
        launch_items_per_subgrid: calib.launch_items_per_subgrid_step,
        agg_collapse: calib.agg_collapse,
        launch_overhead_us: calib.launch_overhead_us,
        allreduce_us,
        steps: opts.steps,
    };

    // Component ids: locality i → core 3i, NIC 3i+1, streams 3i+2;
    // barrier is 3n.
    let mut components: Vec<Box<dyn Component>> = Vec::with_capacity(3 * n + 1);
    for i in 0..n {
        components.push(Box::new(CoreComp {
            self_id: 3 * i,
            barrier: 3 * n,
            owned: pattern.owned[i],
            rng: SplitMix64::new(opts.seed ^ (3 * i as u64).wrapping_mul(0x9E37_79B9)),
            parts_pending: 0,
        }));
        let outbound = pattern.outbound[i]
            .iter()
            .map(|&ci| {
                let ch = pattern.channels[ci as usize];
                let msgs =
                    ((ch.msgs as f64 * calib.parcel_amplification).ceil() as u64).max(1);
                (3 * ch.dst as usize + 1, msgs)
            })
            .collect();
        components.push(Box::new(NicComp {
            core: 3 * i,
            outbound,
            inbound_total: pattern.inbound[i],
            pending: 0,
            busy_until_us: 0.0,
            rng: SplitMix64::new(opts.seed ^ (3 * i as u64 + 1).wrapping_mul(0x9E37_79B9)),
        }));
        components.push(Box::new(StreamComp { core: 3 * i, owned: pattern.owned[i] }));
    }
    components.push(Box::new(BarrierComp { n, arrived: 0, step: 0 }));

    let mut ctx = SimContext::new();
    for target in 0..3 * n {
        ctx.send(target, 0.0, Payload::StepStart);
    }
    while let Some(ev) = ctx.queue.pop() {
        ctx.now_us = ev.time_us;
        ctx.stats.events += 1;
        components[ev.target].handle(ev.payload, &spec, &mut ctx);
    }

    let mut step_times_s = Vec::with_capacity(ctx.step_ends_us.len());
    let mut prev = 0.0;
    for &end in &ctx.step_ends_us {
        step_times_s.push((end - prev) / 1e6);
        prev = end;
    }
    let step_time_s = step_times_s.iter().sum::<f64>() / step_times_s.len().max(1) as f64;
    Ok(ScaleoutResult {
        point: ScalingPoint {
            level: pattern.level,
            nodes: n,
            kind,
            subgrids: pattern.subgrids,
            step_time_s,
            subgrids_per_second: pattern.subgrids as f64 / step_time_s,
        },
        step_times_s,
        stats: ctx.stats,
    })
}

// ---------------------------------------------------------------------
// Checkpoint-cadence sweep (the fault-plan co-simulation).
// ---------------------------------------------------------------------

/// One point of the checkpoint-cadence sweep.
#[derive(Debug, Clone, Copy)]
pub struct CadencePoint {
    /// Steps between checkpoints.
    pub cadence: u32,
    /// Wall time ÷ failure-free, checkpoint-free wall time — 1.0 is
    /// ideal; the minimum over cadences is the Young–Daly optimum.
    pub overhead: f64,
    /// Total simulated wall seconds for the horizon.
    pub wall_s: f64,
}

/// Sweep checkpoint cadences against a node-level MTBF, replaying the
/// DES step time through a seeded failure/rewind Monte Carlo.
///
/// Checkpoint and restore costs scale the *measured* per-sub-grid costs
/// in `calib` (from a timed `DistributedDriver` round-trip) up to the
/// simulated sub-grid count. Failures arrive as a Poisson process with
/// rate `localities / mtbf_node_s`; a failure rewinds to the last
/// checkpoint and pays the restore cost. The same seed (hence the same
/// failure-gap sequence) is used for every cadence so the comparison is
/// common-random-number fair.
pub fn sweep_cadence(
    step_time_s: f64,
    localities: usize,
    subgrids: usize,
    calib: &Calibration,
    mtbf_node_s: f64,
    cadences: &[u32],
    horizon_steps: u64,
    seed: u64,
) -> Vec<CadencePoint> {
    let rate = localities as f64 / mtbf_node_s.max(1e-9);
    let ckpt_s = calib.checkpoint_encode_s_per_subgrid * subgrids as f64;
    let restore_s = calib.checkpoint_restore_s_per_subgrid * subgrids as f64;
    let mut out = Vec::with_capacity(cadences.len());
    for &cadence in cadences {
        let c = cadence.max(1) as u64;
        let mut rng = SplitMix64::new(seed);
        let exp_gap = |rng: &mut SplitMix64| -(1.0 - rng.next_f64()).ln() / rate;
        let mut wall = 0.0f64;
        let mut useful = 0u64;
        let mut since_ckpt = 0u64;
        let mut next_fail = exp_gap(&mut rng);
        let mut guard = 0u64;
        while useful < horizon_steps && guard < horizon_steps.saturating_mul(64) {
            guard += 1;
            let will_ckpt = (since_ckpt + 1) % c == 0;
            let t = step_time_s + if will_ckpt { ckpt_s } else { 0.0 };
            if wall + t > next_fail {
                // Failure mid-step: everything since the last checkpoint
                // is lost; pay the restore and resume from there.
                useful -= since_ckpt;
                since_ckpt = 0;
                wall = next_fail + restore_s;
                next_fail = wall + exp_gap(&mut rng);
            } else {
                wall += t;
                useful += 1;
                since_ckpt += 1;
                if will_ckpt {
                    since_ckpt = 0;
                }
            }
        }
        let ideal = horizon_steps as f64 * step_time_s;
        out.push(CadencePoint { cadence, overhead: wall / ideal, wall_s: wall });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::v1309_structure_tree;

    fn pattern(level: u8, n: usize) -> CommPattern {
        CommPattern::from_tree(&v1309_structure_tree(level), n).unwrap()
    }

    #[test]
    fn pattern_census_is_consistent() {
        let p = pattern(10, 8);
        assert_eq!(p.localities, 8);
        assert_eq!(p.owned.iter().map(|&o| o as usize).sum::<usize>(), p.subgrids);
        let inbound_from_channels: u32 = p.inbound.iter().sum();
        assert_eq!(inbound_from_channels as usize, p.channels.len());
        for (src, outs) in p.outbound.iter().enumerate() {
            for &ci in outs {
                assert_eq!(p.channels[ci as usize].src as usize, src);
            }
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let p = pattern(10, 16);
        let calib = Calibration::synthetic(150_000, 3.0, 12);
        let opts = DesOpts { steps: 3, seed: 7 };
        let a = simulate_scaleout(&p, TransportKind::Mpi, &calib, &opts).unwrap();
        let b = simulate_scaleout(&p, TransportKind::Mpi, &calib, &opts).unwrap();
        assert_eq!(a.point.step_time_s.to_bits(), b.point.step_time_s.to_bits());
        for (x, y) in a.step_times_s.iter().zip(&b.step_times_s) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A different seed perturbs the sampled draws.
        let c = simulate_scaleout(
            &p,
            TransportKind::Mpi,
            &calib,
            &DesOpts { steps: 3, seed: 8 },
        )
        .unwrap();
        assert_ne!(a.point.step_time_s.to_bits(), c.point.step_time_s.to_bits());
    }

    #[test]
    fn more_localities_cut_step_time_at_small_scale() {
        let tree = v1309_structure_tree(10);
        let calib = Calibration::synthetic(200_000, 3.0, 12);
        let opts = DesOpts::default();
        let t = |n: usize| {
            let p = CommPattern::from_tree(&tree, n).unwrap();
            simulate_scaleout(&p, TransportKind::Libfabric, &calib, &opts)
                .unwrap()
                .point
                .step_time_s
        };
        let t1 = t(1);
        let t4 = t(4);
        assert!(t4 < t1, "4 localities ({t4}s) must beat 1 ({t1}s)");
    }

    #[test]
    fn transport_crossover_shape() {
        let tree = v1309_structure_tree(10);
        let mut calib = Calibration::synthetic(200_000, 3.0, 12);
        // Realistic traffic amplification (per-level FMM exchanges on
        // top of leaf halos) — the measured value in the real bench.
        calib.parcel_amplification = 10.0;
        let opts = DesOpts::default();
        let ratio = |n: usize| {
            let p = CommPattern::from_tree(&tree, n).unwrap();
            let m = simulate_scaleout(&p, TransportKind::Mpi, &calib, &opts).unwrap();
            let l = simulate_scaleout(&p, TransportKind::Libfabric, &calib, &opts).unwrap();
            l.point.subgrids_per_second / m.point.subgrids_per_second
        };
        // One locality: no remote channels; libfabric pays the polling
        // tax and dips below parity (the Fig. 3 left edge).
        let r1 = ratio(1);
        assert!(r1 <= 1.0, "1-locality ratio {r1} must not exceed 1");
        assert!(r1 > 0.9, "the dip is slight: {r1}");
        // Communication-bound: libfabric's cheaper per-message CPU wins.
        let r32 = ratio(32);
        assert!(r32 > r1, "ratio must grow with scale: {r1} -> {r32}");
        assert!(r32 > 1.0, "libfabric must win once comm-bound: {r32}");
    }

    #[test]
    fn cadence_sweep_has_interior_optimum() {
        let calib = Calibration::synthetic(200_000, 3.0, 12);
        // step 1 s, 1024 localities, 4096 sub-grids, 1-day node MTBF →
        // failures every ~84 s: Young–Daly lands between the extremes.
        let pts = sweep_cadence(1.0, 1024, 4096, &calib, 86_400.0, &[1, 3, 10, 30, 100], 2_000, 11);
        assert_eq!(pts.len(), 5);
        let best = pts
            .iter()
            .min_by(|a, b| a.overhead.total_cmp(&b.overhead))
            .unwrap();
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(
            best.overhead < first.overhead && best.overhead < last.overhead,
            "interior optimum expected: best c={} {:.3} vs c=1 {:.3}, c=100 {:.3}",
            best.cadence,
            best.overhead,
            first.overhead,
            last.overhead
        );
        for p in &pts {
            assert!(p.overhead >= 1.0, "overhead below ideal: {}", p.overhead);
        }
    }

    #[test]
    fn cadence_sweep_is_deterministic() {
        let calib = Calibration::synthetic(200_000, 3.0, 12);
        let a = sweep_cadence(0.5, 256, 1024, &calib, 86_400.0, &[1, 10, 100], 500, 3);
        let b = sweep_cadence(0.5, 256, 1024, &calib, 86_400.0, &[1, 10, 100], 500, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.overhead.to_bits(), y.overhead.to_bits());
        }
    }
}
