//! Discrete-event performance models — the stand-in for the paper's
//! hardware (repro band: no P100/V100 GPUs, no Cray Aries, no 5400-node
//! Piz Daint available).
//!
//! * [`machine`] — the hardware tables: the Piz Daint node of Table 3,
//!   the Table 2 evaluation platforms, and their efficiency factors.
//! * [`node_level`] — an event-driven simulation of C worker threads
//!   driving S CUDA streams with the §5.1 launch policy. It regenerates
//!   **Table 2** (total/FMM runtime, GFLOP/s, fraction of peak per
//!   platform) and the **§6.1.2** GPU-launch fractions, including the
//!   starvation effect (20 cores + 1 V100 slower than 10 cores +
//!   1 V100).
//! * [`calibrate`] — extraction of every workload constant the scale-out
//!   model needs from *measured* data: [`amt::trace`] span histograms,
//!   parcelport counters, GPU-aggregation statistics, and a timed
//!   checkpoint round-trip.
//! * [`des`] — the trace-calibrated discrete-event co-simulation behind
//!   the reproduced **Figures 2 and 3** (REPRODUCTION.md): per-locality
//!   core/NIC/stream [`des::Component`]s cycling over a shared event
//!   queue, running the real octree decomposition at up to 5400
//!   simulated localities on the two [`parcelport::NetParams`] transport
//!   models, plus the checkpoint-cadence sweep.
//! * [`scaling`] — the original closed-form Figure 2/3 model, kept as an
//!   analytic cross-check (its [`scaling::HandCalibration`] constants
//!   are hand-entered; the DES path takes none).
//! * [`regrid`] — the startup/regridding model behind §6.3's
//!   order-of-magnitude claim (latency/contention-bound small messages).

#![warn(missing_docs)]

pub mod calibrate;
pub mod des;
pub mod machine;
pub mod node_level;
pub mod regrid;
pub mod scaling;

pub use calibrate::{Calibration, CheckpointCost, Measurements};
pub use des::{simulate_scaleout, sweep_cadence, CommPattern, DesOpts, ScaleoutResult};
pub use machine::NodeConfig;
pub use node_level::{simulate_node, NodeLevelResult};
pub use scaling::{efficiency, simulate_scaling, ScalingPoint};
