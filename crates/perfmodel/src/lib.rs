//! Discrete-event performance models — the stand-in for the paper's
//! hardware (repro band: no P100/V100 GPUs, no Cray Aries, no 5400-node
//! Piz Daint available).
//!
//! * [`machine`] — the hardware tables: the Piz Daint node of Table 3,
//!   the Table 2 evaluation platforms, and their efficiency factors.
//! * [`node_level`] — an event-driven simulation of C worker threads
//!   driving S CUDA streams with the §5.1 launch policy. It regenerates
//!   **Table 2** (total/FMM runtime, GFLOP/s, fraction of peak per
//!   platform) and the **§6.1.2** GPU-launch fractions, including the
//!   starvation effect (20 cores + 1 V100 slower than 10 cores +
//!   1 V100).
//! * [`scaling`] — the distributed model driving **Figures 2 and 3**:
//!   the real octree decomposition per refinement level, SFC-partitioned
//!   over N localities, with per-step compute/communication costs from
//!   the two [`parcelport::NetParams`] transport models.
//! * [`regrid`] — the startup/regridding model behind §6.3's
//!   order-of-magnitude claim (latency/contention-bound small messages).

pub mod machine;
pub mod node_level;
pub mod regrid;
pub mod scaling;

pub use machine::{NodeConfig, PIZ_DAINT_NODE};
pub use node_level::{simulate_node, NodeLevelResult};
pub use scaling::{simulate_scaling, ScalingPoint};
