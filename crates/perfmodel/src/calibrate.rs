//! Calibration extraction: measured traces and counters → the inputs of
//! the scale-out co-simulation ([`crate::des`]).
//!
//! The original Figure 2/3 model ([`crate::scaling`]) ran on
//! hand-entered constants (`t_subgrid_us = 4600`, `msg_amplification =
//! 350`, ...). The repo now *measures* everything that model guessed:
//!
//! | input                         | measured source                                      |
//! |-------------------------------|------------------------------------------------------|
//! | per-category kernel durations | [`amt::trace`] span histograms of a real traced solve |
//! | events per sub-grid per step  | span counts ÷ (sub-grids × steps) of the same trace   |
//! | worker utilization            | `1 − trace/idle_rate` of the same trace               |
//! | parcel payload sizes          | `parcel/send` span labels (`<kind>:<bytes>B`)         |
//! | per-parcel send/recv CPU      | `parcel/send` / `parcel/recv` span durations          |
//! | parcel amplification          | measured `parcels/sent` ÷ leaf-halo-plan parcels      |
//! | GPU launch collapse           | `gpusim` aggregation stats (items ÷ batched launches) |
//! | checkpoint encode/restore     | a timed [`DistributedDriver`] checkpoint round-trip   |
//!
//! [`Calibration::from_measurements`] performs that extraction; the
//! result is the *only* workload input the DES takes, so there are no
//! hand-entered kernel constants anywhere on the simulated hot path.
//! The network cost model ([`parcelport::netmodel::NetParams`]) remains
//! the documented Aries engineering estimate — the one quantity this
//! repro-band host cannot measure.
//!
//! [`DistributedDriver`]: ../../octotiger/struct.DistributedDriver.html
//!
//! # Example
//!
//! ```
//! use amt::trace::{Trace, TraceCategory, TraceEvent};
//! use perfmodel::calibrate::{Calibration, CheckpointCost, Measurements};
//!
//! // A synthetic one-thread trace: 4 same-level kernels over 2
//! // sub-grids × 1 step, plus one 1500-byte parcel send.
//! let mk = |cat, dur_ns| TraceEvent { tid: 1, cat, label: None, t0_ns: 0, dur_ns };
//! let mut events: Vec<_> = (0..4)
//!     .map(|i| mk(TraceCategory::FmmSameLevel, 40_000 + i * 1000))
//!     .collect();
//! events.push(TraceEvent {
//!     tid: 1,
//!     cat: TraceCategory::ParcelSend,
//!     label: Some("libfabric:1500B".into()),
//!     t0_ns: 0,
//!     dur_ns: 10,
//! });
//! let trace = Trace { start_ns: 0, end_ns: 1, dropped: 0, threads: vec![], events };
//!
//! let calib = Calibration::from_measurements(&Measurements {
//!     trace: &trace,
//!     metrics: &Default::default(),
//!     subgrids: 2,
//!     steps: 1,
//!     threads: 4,
//!     transport: parcelport::netmodel::TransportKind::Libfabric,
//!     plan_parcels_per_step: 1,
//!     agg_items: 8,
//!     agg_batches: 1,
//!     launch_overhead_us: 5.0,
//!     checkpoint: CheckpointCost::default(),
//! })
//! .unwrap();
//! // 4 same-level events over 2 sub-grid-steps -> rate 2 per sub-grid.
//! let sl = calib.kernel(TraceCategory::FmmSameLevel).unwrap();
//! assert!((sl.events_per_subgrid_step - 2.0).abs() < 1e-12);
//! assert_eq!(sl.hist.count(), 4);
//! assert!((calib.parcel_bytes.mean() - 1500.0).abs() < 1e-9);
//! assert!((calib.agg_collapse - 8.0).abs() < 1e-12);
//! ```

use amt::trace::{DurationHistogram, Trace, TraceCategory};
use parcelport::netmodel::TransportKind;
use std::collections::BTreeMap;
use util::error::{Error, Result};

/// The trace categories charged as per-sub-grid *compute* in the DES —
/// the FMM passes and the hydro kernels, i.e. everything a locality's
/// worker pool grinds through between halo exchanges.
pub const COMPUTE_CATEGORIES: &[TraceCategory] = &[
    TraceCategory::FmmP2M,
    TraceCategory::FmmM2M,
    TraceCategory::FmmGather,
    TraceCategory::FmmSameLevel,
    TraceCategory::FmmNearField,
    TraceCategory::FmmL2L,
    TraceCategory::FmmLeafAssembly,
    TraceCategory::HydroRhs,
    TraceCategory::HydroApply,
];

/// One compute category's measured behaviour: its duration distribution
/// and how many such spans one sub-grid produces per step.
#[derive(Debug, Clone)]
pub struct KernelCal {
    /// Which span category this calibrates.
    pub cat: TraceCategory,
    /// Measured duration distribution (nanoseconds).
    pub hist: DurationHistogram,
    /// Spans of this category per sub-grid per step.
    pub events_per_subgrid_step: f64,
}

/// Measured checkpoint cost, from one timed encode/restore round-trip
/// of the real distributed driver.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointCost {
    /// Wall seconds to encode the whole cluster's state.
    pub encode_s: f64,
    /// Wall seconds to restore it.
    pub restore_s: f64,
    /// Sub-grids in the measured state (for per-sub-grid scaling).
    pub subgrids: usize,
}

impl Default for CheckpointCost {
    /// A neutral placeholder (1 ms / 10 ms over 64 sub-grids) for
    /// callers that do not sweep checkpoint cadence; the `fig23_scaleout`
    /// bench always measures the real thing.
    fn default() -> CheckpointCost {
        CheckpointCost { encode_s: 1e-3, restore_s: 1e-2, subgrids: 64 }
    }
}

/// Raw measured inputs to [`Calibration::from_measurements`].
pub struct Measurements<'a> {
    /// A drained trace of a real (preferably distributed) run.
    pub trace: &'a Trace,
    /// A metrics snapshot of the same run ([`amt::Metrics::snapshot`]);
    /// used for `parcels/sent` and `trace/idle_rate` fallbacks.
    pub metrics: &'a BTreeMap<String, u64>,
    /// Sub-grids resident in the measured run.
    pub subgrids: usize,
    /// Time steps the trace covers.
    pub steps: usize,
    /// Worker threads per locality in the measured run.
    pub threads: usize,
    /// Transport the measured run used — the baseline against which the
    /// DES scales the other transport's per-message CPU costs.
    pub transport: TransportKind,
    /// Parcels per step predicted by the leaf-halo push plan for the
    /// measured topology — the denominator of the amplification factor
    /// that stands in for moment broadcasts and per-level FMM traffic.
    pub plan_parcels_per_step: u64,
    /// Kernel work items submitted through the aggregation region.
    pub agg_items: u64,
    /// Fused launches those items collapsed into.
    pub agg_batches: u64,
    /// Per-launch overhead of the modeled device, µs
    /// ([`gpusim::device::DeviceSpec::launch_overhead_us`]).
    pub launch_overhead_us: f64,
    /// Measured checkpoint round-trip cost.
    pub checkpoint: CheckpointCost,
}

/// Everything the scale-out DES needs to know about the *workload*,
/// extracted from measurements (see the module docs for the full
/// input-to-source table).
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-category kernel cost distributions, in
    /// [`COMPUTE_CATEGORIES`] order (zero-count entries kept so lookups
    /// are total).
    pub kernels: Vec<KernelCal>,
    /// Worker threads per simulated locality.
    pub threads: usize,
    /// Fraction of worker time spent on tasks in the measured run
    /// (`1 − idle_rate`); divides effective thread throughput.
    pub utilization: f64,
    /// Measured parcel payload size distribution, bytes.
    pub parcel_bytes: DurationHistogram,
    /// Measured per-parcel *send* CPU (serialize + inject), ns — the
    /// `parcel/send` span durations. Shares the host clock with the
    /// kernel histograms, so compute and communication stay in the same
    /// units; the DES scales it by the NetParams ratio between the
    /// simulated and the measured transport.
    pub parcel_send_cpu: DurationHistogram,
    /// Measured per-parcel *receive* CPU (dispatch + deliver), ns — the
    /// `parcel/recv` span durations.
    pub parcel_recv_cpu: DurationHistogram,
    /// Transport of the measured run (the per-message baseline).
    pub measured_transport: TransportKind,
    /// Measured parcels per step ÷ leaf-halo-plan parcels per step:
    /// scales the plan's message census up to the real traffic (moment
    /// broadcasts, per-level FMM exchanges, dt reduce).
    pub parcel_amplification: f64,
    /// GPU work items per sub-grid per step (the aggregatable
    /// same-level/near-field kernel launches).
    pub launch_items_per_subgrid_step: f64,
    /// Measured aggregation collapse factor (items per fused launch).
    pub agg_collapse: f64,
    /// Per-launch overhead, µs.
    pub launch_overhead_us: f64,
    /// Checkpoint encode seconds per sub-grid (measured encode ÷
    /// measured sub-grids).
    pub checkpoint_encode_s_per_subgrid: f64,
    /// Restore seconds per sub-grid.
    pub checkpoint_restore_s_per_subgrid: f64,
}

impl Calibration {
    /// Extract a calibration from measured data. Fails if the trace
    /// contains no compute spans at all (nothing to calibrate from) or
    /// if `subgrids`/`steps`/`threads` are zero.
    pub fn from_measurements(m: &Measurements<'_>) -> Result<Calibration> {
        if m.subgrids == 0 || m.steps == 0 || m.threads == 0 {
            return Err(Error::Model(
                "calibration needs non-zero subgrids, steps and threads".into(),
            ));
        }
        let subgrid_steps = (m.subgrids * m.steps) as f64;
        let mut kernels = Vec::with_capacity(COMPUTE_CATEGORIES.len());
        let mut any = false;
        for &cat in COMPUTE_CATEGORIES {
            let hist = m.trace.histogram(cat);
            any |= hist.count() > 0;
            kernels.push(KernelCal {
                cat,
                events_per_subgrid_step: hist.count() as f64 / subgrid_steps,
                hist,
            });
        }
        if !any {
            return Err(Error::Model(
                "trace has no compute spans; run a traced solve first".into(),
            ));
        }

        // Parcel sizes from the `parcel/send` span labels the parcelport
        // records (`<kind>:<bytes>B`).
        let parcel_bytes = DurationHistogram::from_values(
            m.trace
                .events
                .iter()
                .filter(|e| e.cat == TraceCategory::ParcelSend)
                .filter_map(|e| parse_parcel_bytes(e.label.as_deref()?)),
        );

        let parcel_send_cpu = m.trace.histogram(TraceCategory::ParcelSend);
        let parcel_recv_cpu = m.trace.histogram(TraceCategory::ParcelRecv);

        // Amplification: measured parcels per step over the leaf-halo
        // plan's prediction for the same topology. `parcels/sent` covers
        // halos, moments and collectives; the plan covers leaf halos
        // only — the ratio is exactly the traffic the plan undercounts.
        let sent = m
            .metrics
            .get("parcels/sent")
            .copied()
            .unwrap_or_else(|| parcel_bytes.count());
        let parcel_amplification = if m.plan_parcels_per_step == 0 {
            1.0
        } else {
            (sent as f64 / m.steps as f64 / m.plan_parcels_per_step as f64).max(1.0)
        };

        let utilization = {
            let idle = m.trace.idle_rate_permille() as f64 / 1000.0;
            (1.0 - idle).clamp(0.05, 1.0)
        };

        let launch_items_per_subgrid_step = m.agg_items as f64 / subgrid_steps;
        let agg_collapse = if m.agg_batches == 0 {
            1.0
        } else {
            (m.agg_items as f64 / m.agg_batches as f64).max(1.0)
        };

        let ck = m.checkpoint;
        let ck_subgrids = ck.subgrids.max(1) as f64;
        Ok(Calibration {
            kernels,
            threads: m.threads,
            utilization,
            parcel_bytes,
            parcel_send_cpu,
            parcel_recv_cpu,
            measured_transport: m.transport,
            parcel_amplification,
            launch_items_per_subgrid_step,
            agg_collapse,
            launch_overhead_us: m.launch_overhead_us,
            checkpoint_encode_s_per_subgrid: ck.encode_s / ck_subgrids,
            checkpoint_restore_s_per_subgrid: ck.restore_s / ck_subgrids,
        })
    }

    /// A small, hand-built calibration for examples and unit tests:
    /// one kernel category (`FmmSameLevel`) spread ±10% around
    /// `span_ns`, ~4 KiB parcels costing ~20/30 µs to send/receive, no
    /// amplification, and placeholder checkpoint costs. The scale-out
    /// bench never uses this — it always extracts the real thing via
    /// [`Calibration::from_measurements`].
    pub fn synthetic(span_ns: u64, events_per_subgrid_step: f64, threads: usize) -> Calibration {
        let spread = |v: u64| [v - v / 10, v, v + v / 10].into_iter();
        Calibration {
            kernels: vec![KernelCal {
                cat: TraceCategory::FmmSameLevel,
                hist: DurationHistogram::from_values(spread(span_ns)),
                events_per_subgrid_step,
            }],
            threads,
            utilization: 1.0,
            parcel_bytes: DurationHistogram::from_values(spread(4096)),
            parcel_send_cpu: DurationHistogram::from_values(spread(20_000)),
            parcel_recv_cpu: DurationHistogram::from_values(spread(30_000)),
            measured_transport: TransportKind::Libfabric,
            parcel_amplification: 1.0,
            launch_items_per_subgrid_step: 1.0,
            agg_collapse: 8.0,
            launch_overhead_us: 5.0,
            checkpoint_encode_s_per_subgrid: 1e-5,
            checkpoint_restore_s_per_subgrid: 1e-4,
        }
    }

    /// The calibration entry for `cat`, if it is a compute category.
    pub fn kernel(&self, cat: TraceCategory) -> Option<&KernelCal> {
        self.kernels.iter().find(|k| k.cat == cat)
    }

    /// Mean compute nanoseconds one sub-grid costs per step, across all
    /// calibrated categories (the deterministic expectation the sampled
    /// per-step draws fluctuate around).
    pub fn mean_compute_ns_per_subgrid(&self) -> f64 {
        self.kernels
            .iter()
            .map(|k| k.events_per_subgrid_step * k.hist.mean())
            .sum()
    }

    /// Mean parcel payload bytes (falls back to 0 with no measured
    /// parcels — a single-locality calibration run).
    pub fn mean_parcel_bytes(&self) -> f64 {
        self.parcel_bytes.mean()
    }
}

/// Parse the byte count out of a `parcel/send` label (`mpi:1500B`).
fn parse_parcel_bytes(label: &str) -> Option<u64> {
    label.rsplit(':').next()?.strip_suffix('B')?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt::trace::TraceEvent;

    fn span(cat: TraceCategory, dur_ns: u64) -> TraceEvent {
        TraceEvent { tid: 1, cat, label: None, t0_ns: 0, dur_ns }
    }

    fn synthetic_trace() -> Trace {
        let mut events = Vec::new();
        // 8 sub-grids × 2 steps. Per sub-grid-step: 1 p2m @ 10 µs,
        // 3 same-level @ 40 µs, 1 rhs @ 20 µs.
        for _ in 0..16 {
            events.push(span(TraceCategory::FmmP2M, 10_000));
            for _ in 0..3 {
                events.push(span(TraceCategory::FmmSameLevel, 40_000));
            }
            events.push(span(TraceCategory::HydroRhs, 20_000));
        }
        for bytes in [1000u64, 2000, 3000] {
            events.push(TraceEvent {
                tid: 1,
                cat: TraceCategory::ParcelSend,
                label: Some(format!("mpi:{bytes}B")),
                t0_ns: 0,
                dur_ns: 5,
            });
        }
        Trace { start_ns: 0, end_ns: 1, dropped: 0, threads: vec![], events }
    }

    fn measure(trace: &Trace) -> Calibration {
        Calibration::from_measurements(&Measurements {
            trace,
            metrics: &BTreeMap::new(),
            subgrids: 8,
            steps: 2,
            threads: 4,
            transport: TransportKind::Libfabric,
            plan_parcels_per_step: 1,
            agg_items: 64,
            agg_batches: 8,
            launch_overhead_us: 5.0,
            checkpoint: CheckpointCost { encode_s: 0.064, restore_s: 0.128, subgrids: 64 },
        })
        .unwrap()
    }

    #[test]
    fn round_trip_recovers_known_distribution() {
        let trace = synthetic_trace();
        let calib = measure(&trace);
        let p2m = calib.kernel(TraceCategory::FmmP2M).unwrap();
        assert!((p2m.events_per_subgrid_step - 1.0).abs() < 1e-12);
        assert_eq!(p2m.hist.count(), 16);
        assert_eq!(p2m.hist.min(), 10_000);
        assert_eq!(p2m.hist.max(), 10_000);
        let sl = calib.kernel(TraceCategory::FmmSameLevel).unwrap();
        assert!((sl.events_per_subgrid_step - 3.0).abs() < 1e-12);
        assert!((sl.hist.mean() - 40_000.0).abs() < 1e-9);
        // Expected per-sub-grid compute: 10 + 3×40 + 20 = 150 µs.
        assert!((calib.mean_compute_ns_per_subgrid() - 150_000.0).abs() < 1e-6);
        // Parcel bytes: mean of 1000/2000/3000.
        assert!((calib.mean_parcel_bytes() - 2000.0).abs() < 1e-9);
        // Aggregation: 64 items / 8 batches.
        assert!((calib.agg_collapse - 8.0).abs() < 1e-12);
        assert!((calib.checkpoint_encode_s_per_subgrid - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn parcel_label_parsing() {
        assert_eq!(parse_parcel_bytes("mpi:128B"), Some(128));
        assert_eq!(parse_parcel_bytes("libfabric:57344B"), Some(57344));
        assert_eq!(parse_parcel_bytes("garbage"), None);
        assert_eq!(parse_parcel_bytes("mpi:128"), None);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let trace = Trace { start_ns: 0, end_ns: 1, dropped: 0, threads: vec![], events: vec![] };
        let err = Calibration::from_measurements(&Measurements {
            trace: &trace,
            metrics: &BTreeMap::new(),
            subgrids: 8,
            steps: 1,
            threads: 4,
            transport: TransportKind::Libfabric,
            plan_parcels_per_step: 1,
            agg_items: 0,
            agg_batches: 0,
            launch_overhead_us: 5.0,
            checkpoint: CheckpointCost::default(),
        });
        assert!(err.is_err());
    }

    #[test]
    fn amplification_from_metrics() {
        let trace = synthetic_trace();
        let mut metrics = BTreeMap::new();
        metrics.insert("parcels/sent".to_string(), 40u64);
        let calib = Calibration::from_measurements(&Measurements {
            trace: &trace,
            metrics: &metrics,
            subgrids: 8,
            steps: 2,
            threads: 4,
            transport: TransportKind::Libfabric,
            plan_parcels_per_step: 5,
            agg_items: 64,
            agg_batches: 8,
            launch_overhead_us: 5.0,
            checkpoint: CheckpointCost::default(),
        })
        .unwrap();
        // 40 parcels / 2 steps / 5 plan parcels = 4x amplification.
        assert!((calib.parcel_amplification - 4.0).abs() < 1e-12);
    }
}
