//! The startup/regridding model behind §6.3's order-of-magnitude claim.
//!
//! "Start-up timings of the main solver at refinement level 16 and 17
//! were in fact reduced by an order of magnitude using the libfabric
//! parcelport, increasing the efficiency of refining the initial
//! restart file of level 13 to the desired level of resolution."
//!
//! Regridding is a storm of *small* messages (creation requests,
//! prolongation payloads of single sub-grids, AGAS updates), injected
//! by all worker threads at once. Two-sided MPI funnels all of them
//! through its internally locked progress engine — effectively a serial
//! resource per node — while libfabric completions are polled lock-free
//! by every scheduler thread in parallel (§5.2/§6.3). The latency and
//! per-message costs of the transport models do the rest.

use parcelport::netmodel::{NetParams, TransportKind};

/// Result of the regrid/startup model.
#[derive(Debug, Clone, Copy)]
pub struct RegridResult {
    /// Simulated transport.
    pub kind: TransportKind,
    /// Messages exchanged per node during the refinement storm.
    pub messages_per_node: u64,
    /// Modelled wall time, seconds.
    pub wall_s: f64,
}

/// Model refining from `subgrids_from` to `subgrids_to` total sub-grids
/// over `nodes` localities with `threads` workers each. Each new
/// sub-grid costs `msgs_per_subgrid` small control/payload messages.
pub fn simulate_regrid(
    kind: TransportKind,
    subgrids_from: usize,
    subgrids_to: usize,
    nodes: usize,
    threads: usize,
    msgs_per_subgrid: u64,
) -> RegridResult {
    assert!(subgrids_to >= subgrids_from);
    let params = NetParams::for_kind(kind);
    let new_subgrids = (subgrids_to - subgrids_from) as u64;
    let messages_per_node = new_subgrids * msgs_per_subgrid / nodes.max(1) as u64;
    // Per-message processing cost under full injection pressure.
    let per_msg_us = params.latency_us
        + params.recv_cpu_us(threads)
        + params.send_cpu_us(threads);
    // The progress-engine parallelism: MPI's locked engine drains
    // messages serially per node; libfabric's lock-free completion
    // queues are polled by all workers concurrently.
    let drain_parallelism = match kind {
        TransportKind::Mpi => 1.0,
        TransportKind::Libfabric => threads as f64,
    };
    let control_s = messages_per_node as f64 * per_msg_us / drain_parallelism / 1e6;
    // Data movement: every new sub-grid receives a prolongation payload
    // (one parent sub-grid of conserved variables, ~230 KB). Both
    // transports pay the wire; the two-sided path additionally copies
    // the payload through pack/unpack buffers.
    let payload_bytes = new_subgrids as f64 / nodes.max(1) as f64 * 230_000.0;
    let wire_s = payload_bytes / (params.bandwidth_gb_s * 1e9);
    let copy_s = params.payload_copies as f64 * payload_bytes / (params.copy_bandwidth_gb_s * 1e9);
    let wall_s = control_s + wire_s + copy_s;
    RegridResult { kind, messages_per_node, wall_s }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libfabric_startup_is_an_order_of_magnitude_faster() {
        // The §6.3 configuration: level 13 (5,417 sub-grids) refined to
        // level 16 (2.24e5) on 512 nodes, 12 workers.
        let mpi = simulate_regrid(TransportKind::Mpi, 5_417, 224_000, 512, 12, 40);
        let lf = simulate_regrid(TransportKind::Libfabric, 5_417, 224_000, 512, 12, 40);
        let ratio = mpi.wall_s / lf.wall_s;
        assert!(
            ratio >= 8.0,
            "startup speedup must be order-of-magnitude, got {ratio:.1}"
        );
        assert!(lf.wall_s > 0.0);
        assert_eq!(mpi.messages_per_node, lf.messages_per_node);
    }

    #[test]
    fn more_nodes_spread_the_storm() {
        let a = simulate_regrid(TransportKind::Mpi, 0, 100_000, 64, 12, 10);
        let b = simulate_regrid(TransportKind::Mpi, 0, 100_000, 512, 12, 10);
        assert!(b.wall_s < a.wall_s);
    }

    #[test]
    fn no_new_subgrids_no_cost() {
        let r = simulate_regrid(TransportKind::Libfabric, 1000, 1000, 8, 12, 10);
        assert_eq!(r.wall_s, 0.0);
        assert_eq!(r.messages_per_node, 0);
    }
}
