//! Hardware tables: Table 3's Piz Daint node and Table 2's platforms.
//!
//! These are *hardware spec sheets* (core counts, attached GPUs,
//! per-kernel efficiency ceilings) transcribed from the paper's tables;
//! they stay hand-entered by design. What is **deprecated and removed**
//! from the modelling path is hand-entering *workload* constants
//! (kernel durations, message counts): the scale-out co-simulation
//! ([`crate::des`]) takes those exclusively from a measured
//! [`crate::calibrate::Calibration`]. The old `PIZ_DAINT_NODE`
//! function-pointer alias was removed in the same pass — call
//! [`piz_daint_node`] directly.

use gpusim::device::DeviceSpec;

/// One evaluation platform (a row of Table 2).
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Display name, matching Table 2.
    pub name: &'static str,
    /// CPU model.
    pub cpu: DeviceSpec,
    /// Worker threads used (= cores in the paper's runs).
    pub cores: usize,
    /// GPUs attached (empty for CPU-only rows).
    pub gpus: Vec<DeviceSpec>,
    /// CUDA streams per GPU.
    pub streams_per_gpu: usize,
    /// Fraction of per-core peak the FMM kernels reach on this CPU
    /// (≈0.30 on AVX2 Xeons, ≈0.17 on KNL — Table 2).
    pub cpu_fmm_efficiency: f64,
    /// Fraction of GPU peak one resident FMM kernel mix sustains
    /// (§6.1: 21–37% depending on configuration; this is the per-kernel
    /// ceiling before concurrency effects).
    pub gpu_fmm_efficiency: f64,
}

/// The Piz Daint node of Table 3: one 12-core Xeon E5-2690 v3 and one
/// P100, 64 GB RAM, Aries interconnect.
pub fn piz_daint_node() -> NodeConfig {
    NodeConfig {
        name: "Piz Daint node (E5-2690 v3 + P100)",
        cpu: DeviceSpec::xeon_e5_2690v3(),
        cores: 12,
        gpus: vec![DeviceSpec::p100()],
        streams_per_gpu: 128,
        cpu_fmm_efficiency: 0.3145,
        gpu_fmm_efficiency: 0.21,
    }
}

/// All rows of Table 2, in the paper's order.
pub fn table2_platforms() -> Vec<NodeConfig> {
    let xeon10 = DeviceSpec::xeon_e5_2660v3(10);
    let xeon20 = DeviceSpec::xeon_e5_2660v3(20);
    vec![
        NodeConfig {
            name: "Xeon E5-2660 v3, 10 cores (CPU only)",
            cpu: xeon10.clone(),
            cores: 10,
            gpus: vec![],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3255,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "10 cores + 1x V100",
            cpu: xeon10.clone(),
            cores: 10,
            gpus: vec![DeviceSpec::v100()],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3255,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "10 cores + 2x V100",
            cpu: xeon10,
            cores: 10,
            gpus: vec![DeviceSpec::v100(), DeviceSpec::v100()],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3255,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "Xeon E5-2660 v3, 20 cores (CPU only)",
            cpu: xeon20.clone(),
            cores: 20,
            gpus: vec![],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3255,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "20 cores + 1x V100",
            cpu: xeon20.clone(),
            cores: 20,
            gpus: vec![DeviceSpec::v100()],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3255,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "20 cores + 2x V100",
            cpu: xeon20,
            cores: 20,
            gpus: vec![DeviceSpec::v100(), DeviceSpec::v100()],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3255,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "Xeon Phi 7210 (KNL, 64 cores)",
            cpu: DeviceSpec::xeon_phi_7210(),
            cores: 64,
            gpus: vec![],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.1724,
            gpu_fmm_efficiency: 0.45,
        },
        NodeConfig {
            name: "Piz Daint node (CPU only)",
            cpu: DeviceSpec::xeon_e5_2690v3(),
            cores: 12,
            gpus: vec![],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3145,
            gpu_fmm_efficiency: 0.21,
        },
        NodeConfig {
            name: "Piz Daint node + 1x P100",
            cpu: DeviceSpec::xeon_e5_2690v3(),
            cores: 12,
            gpus: vec![DeviceSpec::p100()],
            streams_per_gpu: 128,
            cpu_fmm_efficiency: 0.3145,
            gpu_fmm_efficiency: 0.21,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piz_daint_matches_table3() {
        let n = piz_daint_node();
        assert_eq!(n.cores, 12);
        assert_eq!(n.gpus.len(), 1);
        assert_eq!(n.gpus[0].name, "NVIDIA Tesla P100");
        assert_eq!(n.streams_per_gpu, 128);
    }

    #[test]
    fn table2_has_all_configurations() {
        let rows = table2_platforms();
        assert_eq!(rows.len(), 9);
        let gpu_rows = rows.iter().filter(|r| !r.gpus.is_empty()).count();
        assert_eq!(gpu_rows, 5);
        // KNL row present with the low efficiency the paper reports.
        let knl = rows.iter().find(|r| r.name.contains("Phi")).unwrap();
        assert!(knl.cpu_fmm_efficiency < 0.2);
    }
}
