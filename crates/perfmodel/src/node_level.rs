//! Event-driven node-level simulation — regenerates Table 2 and the
//! §6.1.2 launch fractions.
//!
//! The model follows §5.1/§6.1.1 exactly:
//!
//! * During the gravity solve, every worker thread traverses the octree
//!   and attempts one FMM kernel launch every `launch_gap_us` (the
//!   traversal/bookkeeping time between launches).
//! * The §5.1 policy: if one of the worker's streams is idle the kernel
//!   goes to the GPU (asynchronously — the worker continues); otherwise
//!   the worker executes it itself, blocking for the much longer CPU
//!   kernel duration.
//! * The GPU executes up to `sm_count / blocks` kernels concurrently
//!   (8 blocks per launch, §5.1); completions free their stream.
//!
//! Everything the paper measures falls out: the fraction of kernels
//! launched on the GPU (97.4995% for 20 cores + 1 V100 vs 99.9997% for
//! 10 cores + 1 V100 — the starvation effect), the FMM wall time, and
//! GFLOP/s = total flops / FMM wall time.

use crate::machine::NodeConfig;
use gravity::{INTERACTIONS_PER_LAUNCH, MULTI_FLOPS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The workload of a node-level run.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of FMM kernel launches.
    pub kernels: u64,
    /// Flops per kernel launch.
    pub flops_per_kernel: f64,
    /// Non-FMM wall time on this platform, seconds (hydro &c., measured
    /// CPU-side work the GPUs do not accelerate).
    pub other_wall_s: f64,
    /// Worker-side gap between launch attempts, µs (tree traversal).
    pub launch_gap_us: f64,
}

impl Workload {
    /// The V1309 level-14 run of Table 2, anchored to the Xeon-10
    /// reference row: FMM flops = 125 GFLOP/s × 1228 s, kernels of
    /// 455 flops × 549,888 interactions. The launch gap (1.1 ms of
    /// traversal per launch per worker) is set by the launch-limited
    /// regime of the 10-core + 1 V100 row: 614k kernels / 10 workers in
    /// 68 s.
    pub fn v1309_level14(other_wall_s: f64) -> Workload {
        let flops_per_kernel = (MULTI_FLOPS * INTERACTIONS_PER_LAUNCH) as f64;
        let total_flops = 125.0e9 * 1228.0;
        Workload {
            kernels: (total_flops / flops_per_kernel) as u64,
            flops_per_kernel,
            other_wall_s,
            launch_gap_us: 1100.0,
        }
    }

    /// A tiny workload for fast tests.
    pub fn smoke(kernels: u64) -> Workload {
        Workload {
            kernels,
            flops_per_kernel: (MULTI_FLOPS * INTERACTIONS_PER_LAUNCH) as f64,
            other_wall_s: 10.0,
            launch_gap_us: 1100.0,
        }
    }
}

/// Results of a node-level simulation (one Table 2 row).
#[derive(Debug, Clone, Copy)]
pub struct NodeLevelResult {
    /// Wall time of the FMM phase, seconds.
    pub fmm_wall_s: f64,
    /// Total scenario wall time (FMM + unaccelerated rest).
    pub total_wall_s: f64,
    /// Sustained GFLOP/s during the FMM phase.
    pub gflops: f64,
    /// Fraction of theoretical peak (device peak when GPUs present,
    /// else CPU peak).
    pub fraction_of_peak: f64,
    /// Fraction of kernels launched on the GPU (1.0 for CPU-only rows
    /// is reported as 0.0 — no GPU).
    pub gpu_fraction: f64,
    /// Kernels launched on the GPU.
    pub gpu_kernels: u64,
    /// Kernels that ran on the CPU.
    pub cpu_kernels: u64,
}

/// Blocks per kernel launch (§5.1: "launching kernels with 8 blocks").
pub const BLOCKS_PER_KERNEL: u32 = 8;

/// Run the simulation for one platform.
pub fn simulate_node(config: &NodeConfig, w: &Workload) -> NodeLevelResult {
    let cores = config.cores.max(1);
    let per_core_gflops = config.cpu.dp_peak_gflops / config.cpu.sm_count as f64;
    let t_cpu_kernel_us =
        w.flops_per_kernel / (per_core_gflops * config.cpu_fmm_efficiency * 1e3);

    if config.gpus.is_empty() {
        // CPU-only: workers grind kernels independently.
        let per_worker = (w.kernels as f64 / cores as f64).ceil();
        let fmm_wall_s = per_worker * t_cpu_kernel_us / 1e6;
        let total_flops = w.kernels as f64 * w.flops_per_kernel;
        let gflops = total_flops / fmm_wall_s / 1e9;
        return NodeLevelResult {
            fmm_wall_s,
            total_wall_s: fmm_wall_s + w.other_wall_s,
            gflops,
            fraction_of_peak: gflops / config.cpu.dp_peak_gflops,
            gpu_fraction: 0.0,
            gpu_kernels: 0,
            cpu_kernels: w.kernels,
        };
    }

    // GPU path: event-driven virtual-time simulation.
    struct Stream {
        busy_until: f64, // µs
        device: usize,
    }
    let mut streams: Vec<Stream> = Vec::new();
    for (device, _gpu) in config.gpus.iter().enumerate() {
        for _ in 0..config.streams_per_gpu {
            streams.push(Stream { busy_until: 0.0, device });
        }
    }
    // Device slot heaps: each device runs sm/blocks kernels at once.
    let mut device_slots: Vec<BinaryHeap<Reverse<u64>>> = config
        .gpus
        .iter()
        .map(|g| {
            let conc = (g.sm_count / BLOCKS_PER_KERNEL).max(1);
            (0..conc).map(|_| Reverse(0u64)).collect()
        })
        .collect();
    let t_gpu_kernel_us: Vec<f64> = config
        .gpus
        .iter()
        .map(|g| g.kernel_time_us(w.flops_per_kernel, BLOCKS_PER_KERNEL, config.gpu_fmm_efficiency))
        .collect();

    // Streams assigned round-robin to workers.
    let owner = |stream_idx: usize| stream_idx % cores;
    let mut worker_clock = vec![0.0f64; cores];
    let mut launched = vec![0u64; cores];
    let per_worker = w.kernels / cores as u64;
    let mut gpu_kernels = 0u64;
    let mut cpu_kernels = 0u64;

    // Simulate each worker in lockstep rounds to keep device slot
    // contention causally ordered: process the globally earliest
    // worker-ready event each iteration.
    let total_kernels: u64 = per_worker * cores as u64;
    let mut issued = 0u64;
    while issued < total_kernels {
        // Pick the worker with the earliest clock that still has work.
        let mut c = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, t) in worker_clock.iter().enumerate() {
            if launched[i] < per_worker && *t < best {
                best = *t;
                c = i;
            }
        }
        let t = worker_clock[c];
        // Find an idle stream owned by this worker.
        let mut found: Option<usize> = None;
        for (si, s) in streams.iter().enumerate() {
            if owner(si) == c && s.busy_until <= t {
                found = Some(si);
                break;
            }
        }
        match found {
            Some(si) => {
                let device = streams[si].device;
                // Acquire the earliest free device slot (in integer µs
                // keys for the heap).
                let Reverse(slot_free) = device_slots[device].pop().expect("slots exist");
                let start = t.max(slot_free as f64);
                let end = start + t_gpu_kernel_us[device];
                device_slots[device].push(Reverse(end.ceil() as u64));
                streams[si].busy_until = end;
                gpu_kernels += 1;
                worker_clock[c] = t + w.launch_gap_us;
            }
            None => {
                // CPU fallback: the worker blocks on the kernel itself.
                cpu_kernels += 1;
                worker_clock[c] = t + t_cpu_kernel_us + w.launch_gap_us;
            }
        }
        launched[c] += 1;
        issued += 1;
    }
    let worker_end = worker_clock.iter().cloned().fold(0.0, f64::max);
    let stream_end = streams.iter().map(|s| s.busy_until).fold(0.0, f64::max);
    let fmm_wall_s = worker_end.max(stream_end) / 1e6;
    let total_flops = total_kernels as f64 * w.flops_per_kernel;
    let gflops = total_flops / fmm_wall_s / 1e9;
    let peak: f64 = config.gpus.iter().map(|g| g.dp_peak_gflops).sum();
    NodeLevelResult {
        fmm_wall_s,
        total_wall_s: fmm_wall_s + w.other_wall_s,
        gflops,
        fraction_of_peak: gflops / peak,
        gpu_fraction: gpu_kernels as f64 / total_kernels as f64,
        gpu_kernels,
        cpu_kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::table2_platforms;

    fn find(name: &str) -> NodeConfig {
        table2_platforms()
            .into_iter()
            .find(|c| c.name.contains(name))
            .unwrap_or_else(|| panic!("platform {name} missing"))
    }

    #[test]
    fn cpu_only_reproduces_reference_gflops() {
        // The Xeon-10 row anchors the workload: the model must return
        // ~125 GFLOP/s and ~1228 s by construction.
        let cfg = find("10 cores (CPU only)");
        let w = Workload::v1309_level14(1722.0);
        let r = simulate_node(&cfg, &w);
        assert!((r.gflops - 125.0).abs() / 125.0 < 0.02, "gflops = {}", r.gflops);
        assert!((r.fmm_wall_s - 1228.0).abs() / 1228.0 < 0.02);
        // Table 2 prints "30%"; 125/384 is 32.6%.
        assert!((r.fraction_of_peak - 0.3255).abs() < 0.01);
        assert_eq!(r.gpu_fraction, 0.0);
    }

    #[test]
    fn one_gpu_accelerates_fmm_dramatically() {
        let cfg = find("10 cores + 1x V100");
        let w = Workload::v1309_level14(1722.0);
        let r = simulate_node(&cfg, &w);
        // Table 2: 68 s FMM (vs 1228 CPU-only), >2 TFLOP/s.
        assert!(r.fmm_wall_s < 200.0, "fmm wall {}", r.fmm_wall_s);
        assert!(r.gflops > 1000.0, "gflops {}", r.gflops);
        // Nearly everything launches on the GPU (paper: 99.9997%).
        assert!(r.gpu_fraction > 0.999, "gpu fraction {}", r.gpu_fraction);
    }

    #[test]
    fn twenty_cores_one_gpu_shows_starvation() {
        // §6.1.2: with 20 cores and one V100, workers race the streams,
        // fall back to slow CPU kernels, and the GPU starves: lower
        // GFLOP/s than 10 cores + 1 V100, and a visibly lower GPU
        // launch fraction.
        let w = Workload::v1309_level14(1722.0);
        let r10 = simulate_node(&find("10 cores + 1x V100"), &w);
        let w20 = Workload::v1309_level14(987.0);
        let r20 = simulate_node(&find("20 cores + 1x V100"), &w20);
        assert!(
            r20.gpu_fraction < r10.gpu_fraction,
            "20-core fraction {} !< 10-core {}",
            r20.gpu_fraction,
            r10.gpu_fraction
        );
        // Table 2 shows an outright throughput drop (1516 vs 2271
        // GFLOP/s); our DES reproduces the launch-fraction signature and
        // shows that doubling the cores buys essentially nothing (the
        // GPU, not the launch rate, is the limit) — see EXPERIMENTS.md.
        assert!(
            r20.gflops < 1.3 * r10.gflops,
            "20 cores must not meaningfully beat 10 with one GPU: {} vs {}",
            r20.gflops,
            r10.gflops
        );
    }

    #[test]
    fn two_gpus_with_twenty_cores_recover() {
        // §6.1.2: "Having two V100 offsets the problem".
        let w = Workload::v1309_level14(987.0);
        let r1 = simulate_node(&find("20 cores + 1x V100"), &w);
        let r2 = simulate_node(&find("20 cores + 2x V100"), &w);
        assert!(r2.gflops > r1.gflops);
        assert!(r2.gpu_fraction > r1.gpu_fraction);
    }

    #[test]
    fn smoke_workload_is_fast_and_consistent() {
        let cfg = find("Piz Daint node + 1x P100");
        let w = Workload::smoke(10_000);
        let r = simulate_node(&cfg, &w);
        assert_eq!(r.gpu_kernels + r.cpu_kernels, 10_000 - (10_000 % cfg.cores as u64));
        assert!(r.fmm_wall_s > 0.0);
        assert!(r.fraction_of_peak > 0.0 && r.fraction_of_peak < 1.0);
    }
}
