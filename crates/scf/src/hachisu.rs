//! A Hachisu-style self-consistent-field iteration for rotating
//! polytropes.
//!
//! Hachisu's method (paper ref. \[23\]) iterates between the density and
//! the potential: given ρ, solve for Φ; then update the enthalpy from
//! Bernoulli's integral `H = C − Φ − ½Ω²R²` (cylindrical radius R) and
//! recover ρ from the polytropic relation `H = (n+1) K ρ^(1/n)`; repeat
//! until the density converges. The constants (C, Ω or K) are fixed by
//! pinning the equatorial and polar surface radii.
//!
//! **Substitution note**: the production code uses the full FMM for Φ;
//! this module uses the spherically averaged (monopole) potential
//! `Φ(r) = −M(<r)/r − ∫_r 4πr'ρ dr'`, which is exact in the
//! non-rotating limit (where the iteration must and does reproduce
//! Lane–Emden, see tests) and accurate at the slow rotation rates used
//! for tidally locked binary components.

use crate::lane_emden::Polytrope;

/// Result of the SCF iteration on a spherical-shell grid.
#[derive(Debug, Clone)]
pub struct ScfModel {
    /// Radial grid (cell centres).
    pub r: Vec<f64>,
    /// Equatorial density profile.
    pub rho_eq: Vec<f64>,
    /// Polar density profile.
    pub rho_pole: Vec<f64>,
    /// Central density (held fixed; Hachisu normalization).
    pub rho_c: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative change.
    pub residual: f64,
    /// Recovered polytropic constant K (an output of the iteration).
    pub k: f64,
}

impl ScfModel {
    /// Oblateness: polar surface radius / equatorial surface radius.
    pub fn axis_ratio(&self) -> f64 {
        let surface = |profile: &[f64]| -> f64 {
            for (i, &rho) in profile.iter().enumerate() {
                if rho <= 0.0 {
                    return self.r[i.max(1) - 1];
                }
            }
            *self.r.last().expect("nonempty grid")
        };
        surface(&self.rho_pole) / surface(&self.rho_eq)
    }
}

/// Run the SCF iteration for a polytrope of index `n`, polytropic
/// constant from the non-rotating model `seed`, and angular velocity
/// `omega` (rigid rotation about z).
pub fn scf_rotating(seed: &Polytrope, omega: f64, n_r: usize, max_iter: usize) -> ScfModel {
    assert!(n_r >= 32, "radial resolution too low");
    let n = seed.n;
    let k = seed.k;
    let r_max = seed.radius * 2.0;
    let dr = r_max / n_r as f64;
    let r: Vec<f64> = (0..n_r).map(|i| (i as f64 + 0.5) * dr).collect();
    // Initial guess: the spherical polytrope on both axes.
    let mut rho_eq: Vec<f64> = r.iter().map(|&x| seed.rho(x)).collect();
    let mut rho_pole = rho_eq.clone();
    let rho_c = seed.rho_c;
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut k_out = seed.k;

    for it in 0..max_iter {
        iterations = it + 1;
        // Spherically averaged density (equator weighted 2/3, pole 1/3 —
        // the l = 0 moment of an oblate figure sampled on two rays).
        let rho_avg: Vec<f64> = rho_eq
            .iter()
            .zip(&rho_pole)
            .map(|(e, p)| (2.0 * e + p) / 3.0)
            .collect();
        // Monopole potential.
        let mut m_enc = vec![0.0; n_r];
        let mut acc = 0.0;
        for i in 0..n_r {
            acc += 4.0 * std::f64::consts::PI * r[i] * r[i] * rho_avg[i] * dr;
            m_enc[i] = acc;
        }
        let m_total = acc;
        let mut phi = vec![0.0; n_r];
        // Outer integral ∫_r^∞ 4π r' ρ dr'.
        let mut outer = 0.0;
        for i in (0..n_r).rev() {
            phi[i] = -m_enc[i] / r[i] - outer;
            outer += 4.0 * std::f64::consts::PI * r[i] * rho_avg[i] * dr;
        }
        let _ = m_total;
        // Bernoulli constant pinned so the equatorial surface sits at
        // the seed radius: H = C − Φ_eff with Φ_eff = Φ − ½Ω²R² (R the
        // cylindrical radius), and H = 0 there.
        let surf_idx = ((seed.radius / dr) as usize).min(n_r - 1);
        let c = phi[surf_idx] - 0.5 * omega * omega * r[surf_idx] * r[surf_idx];
        // Hachisu's stable normalization: fix the central density and
        // set ρ = ρ_c (H/H₀)ⁿ with H₀ the central enthalpy (K is an
        // *output*, recovered from H₀ after convergence). Keeping K
        // fixed instead lets the mass scale run away.
        let h0 = c - phi[0];
        if h0 <= 0.0 {
            // Degenerate configuration (rotation beyond breakup).
            residual = f64::NAN;
            break;
        }
        let update = |rho: &mut [f64], equator: bool| {
            for i in 0..n_r {
                let centrifugal = if equator {
                    0.5 * omega * omega * r[i] * r[i]
                } else {
                    0.0
                };
                let h = c - phi[i] + centrifugal;
                rho[i] = if h > 0.0 { rho_c * (h / h0).powf(n) } else { 0.0 };
            }
        };
        let prev_eq = rho_eq.clone();
        update(&mut rho_eq, true);
        update(&mut rho_pole, false);
        // Convergence: largest relative profile change on the equator.
        residual = prev_eq
            .iter()
            .zip(&rho_eq)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
            / rho_c;
        k_out = h0 / ((n + 1.0) * rho_c.powf(1.0 / n));
        if residual < 1e-10 {
            break;
        }
    }
    let _ = (k, rho_c);
    ScfModel { r, rho_eq, rho_pole, rho_c, iterations, residual, k: k_out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonrotating_scf_reproduces_lane_emden() {
        let seed = Polytrope::new(1.0, 1.0, 1.5);
        let model = scf_rotating(&seed, 0.0, 256, 200);
        assert!(model.residual < 1e-8, "did not converge: {}", model.residual);
        // The recovered polytropic constant matches the seed's.
        assert!(
            (model.k - seed.k).abs() / seed.k < 0.05,
            "K {} vs {}",
            model.k,
            seed.k
        );
        // Spherical: axis ratio 1.
        assert!((model.axis_ratio() - 1.0).abs() < 0.02);
        // Profile matches at a few radii.
        for (i, &rr) in model.r.iter().enumerate().step_by(32) {
            if rr < 0.9 {
                let expect = seed.rho(rr);
                let got = model.rho_eq[i];
                assert!(
                    (got - expect).abs() <= 0.08 * seed.rho_c,
                    "rho({rr}) = {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn rotation_flattens_the_star() {
        let seed = Polytrope::new(1.0, 1.0, 1.5);
        // A modest rotation rate (fraction of breakup ~ sqrt(M/R^3) = 1).
        let model = scf_rotating(&seed, 0.3, 256, 200);
        assert!(model.residual < 1e-6, "did not converge: {}", model.residual);
        assert!(
            model.axis_ratio() < 1.0,
            "rotating star must be oblate, ratio = {}",
            model.axis_ratio()
        );
        // Faster rotation, more oblate.
        let model2 = scf_rotating(&seed, 0.45, 256, 200);
        assert!(model2.axis_ratio() < model.axis_ratio());
    }

    #[test]
    fn iterations_are_bounded() {
        let seed = Polytrope::new(1.0, 1.0, 1.5);
        let model = scf_rotating(&seed, 0.2, 128, 50);
        assert!(model.iterations <= 50);
    }

    #[test]
    #[should_panic(expected = "radial resolution")]
    fn low_resolution_rejected() {
        let seed = Polytrope::new(1.0, 1.0, 1.5);
        let _ = scf_rotating(&seed, 0.0, 8, 10);
    }
}

