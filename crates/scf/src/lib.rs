//! Initial stellar models — the Self-Consistent Field (SCF) substrate.
//!
//! "Octo-Tiger uses its Self-Consistent Field module to produce an
//! initial model for V1309 ... The stars are tidally synchronized, and
//! the stars have a common atmosphere" (paper §3); "we assemble the
//! initial scenario using the Self-Consistent Field technique alongside
//! the FMM solver" (§4.2).
//!
//! * [`lane_emden`] — the Lane–Emden equation and polytropic stellar
//!   structure (the paper's V1309 components have n = 3/2 cores).
//! * [`hachisu`] — a Hachisu-style SCF iteration for a uniformly
//!   rotating polytrope, using the spherically averaged (monopole)
//!   potential. In the non-rotating limit it converges to the
//!   Lane–Emden solution (asserted by tests); with rotation it shows
//!   the expected oblateness. The production code couples the full FMM
//!   here — see DESIGN.md for the documented substitution.
//! * [`binary`] — the V1309 Scorpii initial model: two tidally
//!   truncated, synchronously rotating polytropes with helium cores, a
//!   common envelope, passive-scalar tagging, and the rotating-frame
//!   velocity field, painted onto an AMR octree.

pub mod binary;
pub mod hachisu;
pub mod lane_emden;

pub use binary::BinaryModel;
pub use lane_emden::{LaneEmden, Polytrope};
