//! The Lane–Emden equation and polytropic stellar structure.
//!
//! A polytrope `p = K ρ^(1+1/n)` in hydrostatic equilibrium satisfies
//! the Lane–Emden equation
//!
//!   (1/ξ²) d/dξ (ξ² dθ/dξ) = −θⁿ,  θ(0) = 1, θ'(0) = 0,
//!
//! with ρ = ρ_c θⁿ and the surface at the first zero ξ₁. The V1309
//! components are modelled with n = 3/2 (γ = 5/3 convective
//! envelopes/helium cores).

/// Tabulated Lane–Emden solution for index `n`.
#[derive(Debug, Clone)]
pub struct LaneEmden {
    pub n: f64,
    /// Radial grid ξ.
    pub xi: Vec<f64>,
    /// θ(ξ).
    pub theta: Vec<f64>,
    /// First zero ξ₁ (surface).
    pub xi1: f64,
    /// |dθ/dξ| at ξ₁.
    pub dtheta_surface: f64,
}

impl LaneEmden {
    /// Integrate with RK4 until θ crosses zero.
    pub fn solve(n: f64) -> LaneEmden {
        assert!((0.0..5.0).contains(&n), "polytropic index out of range");
        let h = 1e-4;
        let mut xi = vec![0.0];
        let mut theta = vec![1.0];
        // State: (θ, φ = dθ/dξ). At ξ = 0 use the series expansion to
        // step off the singularity: θ ≈ 1 − ξ²/6.
        let mut x: f64 = h;
        let mut th = 1.0 - x * x / 6.0 + n * x.powi(4) / 120.0;
        let mut ph = -x / 3.0 + n * x.powi(3) / 30.0;
        xi.push(x);
        theta.push(th);
        let deriv = |x: f64, th: f64, ph: f64| -> (f64, f64) {
            let rhs = if th > 0.0 { -th.powf(n) } else { 0.0 };
            (ph, rhs - 2.0 * ph / x)
        };
        let mut steps = 0u32;
        let mut prev_th = th;
        while th > 0.0 && steps < 2_000_000 {
            prev_th = th;
            let (k1t, k1p) = deriv(x, th, ph);
            let (k2t, k2p) = deriv(x + h / 2.0, th + h / 2.0 * k1t, ph + h / 2.0 * k1p);
            let (k3t, k3p) = deriv(x + h / 2.0, th + h / 2.0 * k2t, ph + h / 2.0 * k2p);
            let (k4t, k4p) = deriv(x + h, th + h * k3t, ph + h * k3p);
            th += h / 6.0 * (k1t + 2.0 * k2t + 2.0 * k3t + k4t);
            ph += h / 6.0 * (k1p + 2.0 * k2p + 2.0 * k3p + k4p);
            x += h;
            // Subsample the table to keep it small.
            if steps % 16 == 0 {
                xi.push(x);
                theta.push(th.max(0.0));
            }
            steps += 1;
        }
        assert!(th <= 0.0, "Lane-Emden did not reach the surface");
        // Linear interpolation for the zero crossing within the last step.
        let frac = prev_th / (prev_th - th);
        let xi1 = (x - h) + frac * h;
        LaneEmden { n, xi, theta, xi1, dtheta_surface: ph.abs() }
    }

    /// θ at arbitrary ξ by linear interpolation (0 beyond the surface).
    pub fn theta_at(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        if x >= self.xi1 {
            return 0.0;
        }
        match self.xi.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => self.theta[i],
            Err(i) => {
                if i == 0 {
                    return 1.0;
                }
                if i >= self.xi.len() {
                    return 0.0;
                }
                let (x0, x1) = (self.xi[i - 1], self.xi[i]);
                let (t0, t1) = (self.theta[i - 1], self.theta[i]);
                let f = (x - x0) / (x1 - x0);
                (t0 + f * (t1 - t0)).max(0.0)
            }
        }
    }
}

/// A polytropic star scaled to a given mass and radius (G = 1).
#[derive(Debug, Clone)]
pub struct Polytrope {
    pub mass: f64,
    pub radius: f64,
    pub n: f64,
    pub rho_c: f64,
    /// Polytropic constant K in `p = K ρ^(1+1/n)`.
    pub k: f64,
    profile: LaneEmden,
}

impl Polytrope {
    pub fn new(mass: f64, radius: f64, n: f64) -> Polytrope {
        assert!(mass > 0.0 && radius > 0.0);
        let profile = LaneEmden::solve(n);
        // M = 4π ρ_c (R/ξ₁)³ ξ₁² |θ'(ξ₁)|.
        let a = radius / profile.xi1;
        let rho_c =
            mass / (4.0 * std::f64::consts::PI * a.powi(3) * profile.xi1 * profile.xi1 * profile.dtheta_surface);
        // a² = (n+1) K ρ_c^(1/n − 1) / (4π)  (G = 1).
        let k = 4.0 * std::f64::consts::PI * a * a / (n + 1.0) * rho_c.powf(1.0 - 1.0 / n);
        Polytrope { mass, radius, n, rho_c, k, profile }
    }

    /// Density at distance `r` from the centre (0 outside).
    pub fn rho(&self, r: f64) -> f64 {
        let xi = r / self.radius * self.profile.xi1;
        self.rho_c * self.profile.theta_at(xi).powf(self.n)
    }

    /// Pressure at distance `r` (polytropic relation).
    pub fn pressure(&self, r: f64) -> f64 {
        self.k * self.rho(r).powf(1.0 + 1.0 / self.n)
    }

    /// Specific internal energy density ρε = p/(γ−1) with γ = 1 + 1/n.
    pub fn e_int(&self, r: f64) -> f64 {
        self.pressure(r) * self.n
    }

    /// Numerically integrated total mass (for validation).
    pub fn integrated_mass(&self, samples: usize) -> f64 {
        let dr = self.radius / samples as f64;
        let mut m = 0.0;
        for i in 0..samples {
            let r = (i as f64 + 0.5) * dr;
            m += 4.0 * std::f64::consts::PI * r * r * self.rho(r) * dr;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n0_analytic_solution() {
        // n = 0: θ = 1 − ξ²/6, ξ₁ = √6, |θ'(ξ₁)| = √6/3.
        let le = LaneEmden::solve(0.0);
        assert!((le.xi1 - 6f64.sqrt()).abs() < 1e-3, "xi1 = {}", le.xi1);
        assert!((le.dtheta_surface - 6f64.sqrt() / 3.0).abs() < 1e-3);
        assert!((le.theta_at(1.0) - (1.0 - 1.0 / 6.0)).abs() < 1e-4);
    }

    #[test]
    fn n1_analytic_solution() {
        // n = 1: θ = sin(ξ)/ξ, ξ₁ = π.
        let le = LaneEmden::solve(1.0);
        assert!((le.xi1 - std::f64::consts::PI).abs() < 1e-3, "xi1 = {}", le.xi1);
        for x in [0.5f64, 1.0, 2.0, 3.0] {
            let exact = x.sin() / x;
            assert!((le.theta_at(x) - exact).abs() < 1e-3, "theta({x})");
        }
    }

    #[test]
    fn n_three_halves_surface() {
        // n = 3/2: ξ₁ ≈ 3.65375, ξ₁²|θ'| ≈ 2.71406.
        let le = LaneEmden::solve(1.5);
        assert!((le.xi1 - 3.65375).abs() < 2e-3, "xi1 = {}", le.xi1);
        let m_factor = le.xi1 * le.xi1 * le.dtheta_surface;
        assert!((m_factor - 2.71406).abs() < 5e-3, "m_factor = {m_factor}");
    }

    #[test]
    fn polytrope_mass_closes() {
        let p = Polytrope::new(1.54, 2.1, 1.5);
        let m = p.integrated_mass(20_000);
        assert!(
            (m - 1.54).abs() / 1.54 < 1e-3,
            "integrated mass {m} vs 1.54"
        );
        assert_eq!(p.rho(3.0), 0.0);
        assert!(p.rho(0.0) > p.rho(1.0));
    }

    #[test]
    fn central_density_contrast_is_polytropic() {
        // For n = 3/2 the central-to-mean density ratio is ≈ 5.99.
        let p = Polytrope::new(1.0, 1.0, 1.5);
        let mean = 1.0 / (4.0 / 3.0 * std::f64::consts::PI);
        let ratio = p.rho_c / mean;
        assert!((ratio - 5.99).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn pressure_and_energy_profiles() {
        let p = Polytrope::new(1.0, 1.0, 1.5);
        assert!(p.pressure(0.0) > p.pressure(0.5));
        assert!(p.pressure(1.1) == 0.0);
        // γ = 5/3 ⇒ ρε = p/(γ−1) = 1.5 p.
        assert!((p.e_int(0.3) - 1.5 * p.pressure(0.3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "polytropic index")]
    fn n5_is_rejected() {
        let _ = LaneEmden::solve(5.0);
    }
}
