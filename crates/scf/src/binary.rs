//! The V1309 Scorpii initial model (paper §3, §6).
//!
//! "The initial model of our V1309 simulation includes a 1.54 M⊙
//! primary and a 0.17 M⊙ secondary. Each have helium cores and solar
//! composition envelopes, and there is a common envelope surrounding
//! both stars. ... The grid is rotating about the z-axis with a period
//! of 1.42 days. ... The system parameters are chosen such that the
//! spin angular momentum just barely exceeds one third of the orbital
//! angular momentum" (the Darwin instability threshold).
//!
//! **Substitution note** (see DESIGN.md): the production initial model
//! is built by the full SCF solver coupled to the FMM; at laptop scale
//! we superpose two tidally truncated polytropes (tidal radii from the
//! Eggleton Roche-lobe formula), a common envelope, and the synchronous
//! (rigid) rotation field, which exercises the identical code paths —
//! AMR painting, passive-scalar tagging, rotating frame — and yields an
//! approximately stationary configuration in the co-rotating frame.

use crate::lane_emden::Polytrope;
use hydro::eos::IdealGas;
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use util::units::{kepler_omega, v1309};
use util::vec3::Vec3;

/// Eggleton's Roche-lobe radius fraction `r_L / a` for mass ratio `q`.
pub fn eggleton_roche_fraction(q: f64) -> f64 {
    assert!(q > 0.0, "mass ratio must be positive");
    let q23 = q.powf(2.0 / 3.0);
    let q13 = q.powf(1.0 / 3.0);
    0.49 * q23 / (0.6 * q23 + (1.0 + q13).ln())
}

/// The binary initial model.
#[derive(Debug, Clone)]
pub struct BinaryModel {
    pub primary: Polytrope,
    pub secondary: Polytrope,
    pub primary_pos: Vec3,
    pub secondary_pos: Vec3,
    /// Orbital / grid angular velocity (code units).
    pub omega: f64,
    /// Core radius fraction (helium cores).
    pub core_fraction: f64,
    /// Atmosphere floor density.
    pub atmosphere_rho: f64,
    /// Common-envelope density scale (adds a shared halo around both).
    pub envelope_rho: f64,
}

impl BinaryModel {
    /// The §6 configuration: M₁ = 1.54, M₂ = 0.17 M⊙, a = 6.37 R⊙,
    /// components sized to (approximately) fill their Roche lobes.
    pub fn v1309() -> BinaryModel {
        let (m1, m2, a) = (v1309::M_PRIMARY, v1309::M_SECONDARY, v1309::SEPARATION);
        let m_total = m1 + m2;
        let r2 = eggleton_roche_fraction(m2 / m1) * a;
        // The primary is a contact-ish giant: near its own lobe.
        let r1 = 0.9 * eggleton_roche_fraction(m1 / m2) * a;
        BinaryModel {
            primary: Polytrope::new(m1, r1, 1.5),
            secondary: Polytrope::new(m2, r2, 1.5),
            primary_pos: Vec3::new(-a * m2 / m_total, 0.0, 0.0),
            secondary_pos: Vec3::new(a * m1 / m_total, 0.0, 0.0),
            omega: kepler_omega(m_total, a),
            core_fraction: 0.25,
            atmosphere_rho: 1.0e-12,
            envelope_rho: 1.0e-6,
        }
    }

    /// Scaled-down variant for tests/examples: same structure on a
    /// small domain and coarse tree.
    pub fn scaled(m1: f64, m2: f64, a: f64) -> BinaryModel {
        let m_total = m1 + m2;
        let r2 = eggleton_roche_fraction(m2 / m1) * a;
        let r1 = 0.9 * eggleton_roche_fraction(m1 / m2) * a;
        BinaryModel {
            primary: Polytrope::new(m1, r1, 1.5),
            secondary: Polytrope::new(m2, r2, 1.5),
            primary_pos: Vec3::new(-a * m2 / m_total, 0.0, 0.0),
            secondary_pos: Vec3::new(a * m1 / m_total, 0.0, 0.0),
            omega: kepler_omega(m_total, a),
            core_fraction: 0.25,
            atmosphere_rho: 1.0e-12,
            envelope_rho: 1.0e-6,
        }
    }

    /// Density at a point: stars + common envelope + atmosphere floor.
    pub fn density(&self, p: Vec3) -> f64 {
        let d1 = (p - self.primary_pos).norm();
        let d2 = (p - self.secondary_pos).norm();
        let star = self.primary.rho(d1) + self.secondary.rho(d2);
        // Common envelope: an exponential halo around both components.
        let scale = self.primary.radius;
        let env = self.envelope_rho
            * ((-d1 / scale).exp() + (-d2 / scale).exp());
        (star + env).max(self.atmosphere_rho)
    }

    /// Internal energy density at a point (stellar interiors polytropic;
    /// envelope/atmosphere at a warm floor to keep pressures positive).
    pub fn e_int(&self, p: Vec3) -> f64 {
        let d1 = (p - self.primary_pos).norm();
        let d2 = (p - self.secondary_pos).norm();
        let star = self.primary.e_int(d1) + self.secondary.e_int(d2);
        let floor = self.density(p) * 1.0e-3;
        star.max(floor)
    }

    /// Velocity of the (tidally synchronized) flow at a point, in the
    /// *inertial* frame: rigid rotation Ω ẑ × r.
    pub fn velocity_inertial(&self, p: Vec3) -> Vec3 {
        Vec3::new(-self.omega * p.y, self.omega * p.x, 0.0)
    }

    /// Passive-scalar fractions at a point, in the order
    /// (accretor core, accretor envelope, donor core, donor envelope,
    /// atmosphere); they sum to 1.
    pub fn fractions(&self, p: Vec3) -> [f64; 5] {
        let d1 = (p - self.primary_pos).norm();
        let d2 = (p - self.secondary_pos).norm();
        let rho1 = self.primary.rho(d1);
        let rho2 = self.secondary.rho(d2);
        let total = rho1 + rho2;
        if total <= self.atmosphere_rho {
            return [0.0, 0.0, 0.0, 0.0, 1.0];
        }
        let mut f = [0.0; 5];
        let w1 = rho1 / total;
        let w2 = rho2 / total;
        if d1 < self.core_fraction * self.primary.radius {
            f[0] = w1;
        } else {
            f[1] = w1;
        }
        if d2 < self.core_fraction * self.secondary.radius {
            f[2] = w2;
        } else {
            f[3] = w2;
        }
        f
    }

    /// Total spin : orbital angular momentum ratio (the Darwin
    /// instability diagnostic of §3): rigid spins I₁Ω + I₂Ω against
    /// μ a² Ω.
    pub fn spin_to_orbital(&self) -> f64 {
        // Moment of inertia of an n = 3/2 polytrope: ≈ 0.205 M R².
        let kappa = 0.205;
        let spin = kappa
            * (self.primary.mass * self.primary.radius.powi(2)
                + self.secondary.mass * self.secondary.radius.powi(2));
        let m_total = self.primary.mass + self.secondary.mass;
        let mu = self.primary.mass * self.secondary.mass / m_total;
        let a = (self.primary_pos - self.secondary_pos).norm();
        spin / (mu * a * a)
    }

    /// Paint the model onto every leaf of `tree` (conserved variables
    /// plus passive scalars), using `eos` for the entropy tracer. The
    /// momenta are the *inertial-frame* ones, as Octo-Tiger evolves
    /// inertial momenta on a rotating grid.
    pub fn paint(&self, tree: &mut Octree, eos: &IdealGas) {
        assert!(tree.has_grids(), "painting needs grid data");
        let domain: Domain = tree.domain();
        for key in tree.leaves() {
            let node = tree.node_mut(key).expect("leaf exists");
            let grid = node.grid.as_mut().expect("leaf grid");
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                let rho = self.density(c);
                let e_int = self.e_int(c);
                let v = self.velocity_inertial(c);
                let fr = self.fractions(c);
                grid.set(Field::Rho, i, j, k, rho);
                grid.set(Field::Sx, i, j, k, rho * v.x);
                grid.set(Field::Sy, i, j, k, rho * v.y);
                grid.set(Field::Sz, i, j, k, rho * v.z);
                grid.set(Field::Egas, i, j, k, e_int + 0.5 * rho * v.norm2());
                grid.set(Field::Tau, i, j, k, eos.tau_from_e(e_int));
                grid.set(Field::AccretorCore, i, j, k, rho * fr[0]);
                grid.set(Field::AccretorEnv, i, j, k, rho * fr[1]);
                grid.set(Field::DonorCore, i, j, k, rho * fr[2]);
                grid.set(Field::DonorEnv, i, j, k, rho * fr[3]);
                grid.set(Field::Atmosphere, i, j, k, rho * fr[4]);
            }
        }
        tree.restrict_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eggleton_known_values() {
        // q = 1: r_L/a ≈ 0.379.
        assert!((eggleton_roche_fraction(1.0) - 0.379).abs() < 0.002);
        // Monotone in q.
        assert!(eggleton_roche_fraction(0.1) < eggleton_roche_fraction(1.0));
        assert!(eggleton_roche_fraction(10.0) > eggleton_roche_fraction(1.0));
    }

    #[test]
    fn v1309_geometry_matches_paper() {
        let b = BinaryModel::v1309();
        let sep = (b.primary_pos - b.secondary_pos).norm();
        assert!((sep - 6.37).abs() < 1e-12);
        // Centre of mass at the origin.
        let com = b.primary_pos * b.primary.mass + b.secondary_pos * b.secondary.mass;
        assert!(com.norm() < 1e-10);
        // Orbital period ≈ 1.42 days.
        let u = util::units::UnitSystem::solar();
        let period = u.code_to_days(2.0 * std::f64::consts::PI / b.omega);
        assert!((period - 1.42).abs() < 0.08, "period {period} d");
    }

    #[test]
    fn darwin_instability_threshold() {
        // §3: the spin angular momentum just barely exceeds one third of
        // the orbital angular momentum. Our model should be in that
        // neighbourhood (0.2–0.6).
        let b = BinaryModel::v1309();
        let ratio = b.spin_to_orbital();
        assert!(
            (0.15..0.8).contains(&ratio),
            "spin/orbital = {ratio}, expected near the 1/3 Darwin threshold"
        );
    }

    #[test]
    fn density_peaks_at_the_cores() {
        let b = BinaryModel::v1309();
        let at_primary = b.density(b.primary_pos);
        let at_secondary = b.density(b.secondary_pos);
        let far = b.density(Vec3::new(300.0, 0.0, 0.0));
        // The compact donor is centrally denser than the bloated giant
        // (M/R³: 0.17/1.36³ > 1.54/3.27³) — both dwarf the atmosphere.
        assert!(at_secondary > at_primary);
        assert_eq!(far, b.atmosphere_rho);
        assert!(at_primary > 1e3 * far);
    }

    #[test]
    fn fractions_partition_unity() {
        let b = BinaryModel::v1309();
        for p in [
            b.primary_pos,
            b.secondary_pos,
            Vec3::new(0.0, 1.0, 0.5),
            Vec3::new(100.0, 0.0, 0.0),
        ] {
            let f = b.fractions(p);
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "fractions at {p:?} sum to {sum}");
            assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        // Core tagging at the very centres.
        assert!(b.fractions(b.primary_pos)[0] > 0.9);
        assert!(b.fractions(b.secondary_pos)[2] > 0.5);
    }

    #[test]
    fn synchronous_velocity_field() {
        let b = BinaryModel::v1309();
        let v = b.velocity_inertial(b.secondary_pos);
        // Rigid rotation: v = Ω × r, magnitude Ω·|x|.
        assert!((v.norm() - b.omega * b.secondary_pos.x.abs()).abs() < 1e-12);
        assert!(v.x.abs() < 1e-12, "velocity is tangential");
    }

    #[test]
    fn paint_fills_tree_conservatively() {
        let b = BinaryModel::scaled(1.0, 0.3, 2.0);
        let mut tree = Octree::new(Domain::new(16.0));
        tree.refine_where(2, |d, k| {
            let c = d.node_center(k);
            let half = d.node_extent(k.level) / 2.0;
            (c - b.primary_pos).norm() < 2.0 + half * 2.0
                || (c - b.secondary_pos).norm() < 2.0 + half * 2.0
        });
        let eos = IdealGas::monatomic();
        b.paint(&mut tree, &eos);
        // Total mass on the tree approximates the binary mass (coarse
        // grid: generous tolerance, but the right order).
        let domain = tree.domain();
        let mut mass = 0.0;
        for key in tree.leaves() {
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            mass += grid.interior_sum(Field::Rho) * domain.cell_volume(key.level);
        }
        assert!(
            (mass - 1.3).abs() / 1.3 < 0.5,
            "painted mass {mass} vs 1.3 (coarse-grid tolerance)"
        );
        // Scalars sum to rho everywhere.
        for key in tree.leaves() {
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let rho = grid.at(Field::Rho, i, j, k);
                let sum = grid.at(Field::AccretorCore, i, j, k)
                    + grid.at(Field::AccretorEnv, i, j, k)
                    + grid.at(Field::DonorCore, i, j, k)
                    + grid.at(Field::DonorEnv, i, j, k)
                    + grid.at(Field::Atmosphere, i, j, k);
                assert!((sum - rho).abs() < 1e-10 * rho, "scalar partition broken");
            }
        }
    }
}
