//! Gravity–hydro coupling: a polytrope painted from the SCF crate must
//! be near hydrostatic balance under the FMM field — the pressure
//! gradient balances gravity, which is what keeps the §4.2 star test
//! stable.

use gravity::solver::FmmSolver;
use hydro::eos::IdealGas;
use integration_tests::filled_uniform_tree;
use octree::subgrid::{Field, N_SUB};
use scf::lane_emden::Polytrope;
use util::vec3::Vec3;

#[test]
fn polytrope_is_near_hydrostatic_balance() {
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let tree = filled_uniform_tree(8.0, 2, &eos, |c| {
        let r = c.norm();
        let rho = star.rho(r).max(1e-10);
        (rho, Vec3::ZERO, star.e_int(r).max(rho * 1e-6))
    });
    let solver = FmmSolver::new(0.5);
    let field = solver.solve(&tree);

    // Compare |g| against the analytic enclosed-mass field at a few
    // interior radii.
    let domain = tree.domain();
    let mut checked = 0;
    for key in tree.leaves() {
        let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
        let cells = field.leaf(key).unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let r = c.norm();
            if !(0.4..0.8).contains(&r) {
                continue;
            }
            let ci = ((i * N_SUB as isize + j) * N_SUB as isize + k) as usize;
            let g = cells[ci].g;
            // Enclosed mass by numerical integration of the profile.
            let mut m_enc = 0.0;
            let n_s = 200;
            let dr = r / n_s as f64;
            for s in 0..n_s {
                let rs = (s as f64 + 0.5) * dr;
                m_enc += 4.0 * std::f64::consts::PI * rs * rs * star.rho(rs) * dr;
            }
            let g_exact = m_enc / (r * r);
            let rel = (g.norm() - g_exact).abs() / g_exact;
            assert!(
                rel < 0.15,
                "|g| at r = {r:.2}: {} vs analytic {g_exact} (rel {rel})",
                g.norm()
            );
            // Gravity points inward.
            assert!(g.dot(c) < 0.0, "gravity must point inward at {c:?}");
            checked += 1;
        }
    }
    assert!(checked > 50, "too few cells sampled: {checked}");
}

#[test]
fn potential_energy_matches_polytropic_formula() {
    // For an n-polytrope: W = -3/(5-n) M^2/R = -6/7 for n = 3/2, M = R = 1.
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let tree = filled_uniform_tree(8.0, 2, &eos, |c| {
        let r = c.norm();
        let rho = star.rho(r).max(1e-10);
        (rho, Vec3::ZERO, star.e_int(r).max(rho * 1e-6))
    });
    let solver = FmmSolver::new(0.5);
    let field = solver.solve(&tree);
    let domain = tree.domain();
    let mut w = 0.0;
    for key in tree.leaves() {
        let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
        let cells = field.leaf(key).unwrap();
        let vol = domain.cell_volume(key.level);
        for (i, j, k) in grid.indexer().interior() {
            let ci = ((i * N_SUB as isize + j) * N_SUB as isize + k) as usize;
            w += 0.5 * grid.at(Field::Rho, i, j, k) * cells[ci].phi * vol;
        }
    }
    let exact = -6.0 / 7.0;
    assert!(
        (w - exact).abs() / exact.abs() < 0.1,
        "W = {w} vs polytropic {exact}"
    );
}
