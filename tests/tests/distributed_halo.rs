//! Distributed halo exchange across the simulated cluster: sub-grid
//! halo slabs travel as parcels over both parcelports and must
//! reproduce exactly what the shared-memory halo fill computes.

use amt::GlobalId;
use octree::subgrid::{Field, SubGrid};
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use parcelport::parcel::ActionId;
use parking_lot_stub::Mutex;
use std::sync::Arc;

/// Tiny shim: std Mutex under the name used below (the integration
/// package does not depend on parking_lot directly).
mod parking_lot_stub {
    pub use std::sync::Mutex as StdMutex;
    pub struct Mutex<T>(StdMutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(StdMutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().expect("poisoned")
        }
    }
}

struct HaloMsg {
    field: usize,
    dir: (i32, i32, i32),
    values: Vec<f64>,
}

serde::impl_codec_struct!(HaloMsg { field, dir, values });

fn exchange_over(kind: TransportKind) {
    // Locality 0 owns grid A, locality 1 owns grid B (B at +x of A).
    let mut a = SubGrid::new();
    for (i, j, k) in a.indexer().interior() {
        a.set(Field::Rho, i, j, k, (100 * i + 10 * j + k) as f64 + 0.5);
    }

    let cluster = Cluster::builder().localities(2).threads_per(2).transport(kind).build();
    let received: Arc<Mutex<Option<HaloMsg>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&received);
    let halo = cluster.register_action(ActionId(7), move |_rt, _id, msg: HaloMsg| {
        *sink.lock() = Some(msg);
    });

    // A sends its +x face slab to B (direction from B towards A is -x).
    let dir = (-1, 0, 0);
    let slab = a.extract_halo(Field::Rho, dir);
    let msg = HaloMsg { field: Field::Rho.idx(), dir, values: slab };
    cluster.locality(0).send_action(halo, 1, GlobalId(1), &msg).expect("halo send");
    cluster.wait_quiescent();

    // B applies the received slab; its ghosts must equal A's interior.
    let msg = received.lock().take().expect("halo must arrive");
    assert_eq!(msg.field, Field::Rho.idx());
    let mut b = SubGrid::new();
    b.apply_halo(Field::Rho, msg.dir, &msg.values);
    for j in 0..8 {
        for k in 0..8 {
            assert_eq!(
                b.at(Field::Rho, -1, j, k),
                a.at(Field::Rho, 7, j, k),
                "ghost mismatch over {kind} at ({j},{k})"
            );
            assert_eq!(b.at(Field::Rho, -3, j, k), a.at(Field::Rho, 5, j, k));
        }
    }
}

#[test]
fn halo_exchange_over_mpi() {
    exchange_over(TransportKind::Mpi);
}

#[test]
fn halo_exchange_over_libfabric() {
    exchange_over(TransportKind::Libfabric);
}

#[test]
fn all_26_directions_roundtrip_over_the_wire() {
    // Every direction's slab must survive codec + transport bit-exactly.
    let mut a = SubGrid::new();
    for (i, j, k) in a.indexer().interior() {
        a.set(Field::Egas, i, j, k, ((i * 31 + j * 7 + k) as f64).sin());
    }
    let cluster = Cluster::builder().localities(2).transport(TransportKind::Libfabric).build();
    let got: Arc<Mutex<Vec<HaloMsg>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let halo = cluster.register_action(ActionId(8), move |_rt, _id, msg: HaloMsg| {
        sink.lock().push(msg);
    });
    let mut sent = 0;
    for dx in -1i32..=1 {
        for dy in -1i32..=1 {
            for dz in -1i32..=1 {
                if (dx, dy, dz) == (0, 0, 0) {
                    continue;
                }
                let slab = a.extract_halo(Field::Egas, (dx, dy, dz));
                let msg = HaloMsg { field: Field::Egas.idx(), dir: (dx, dy, dz), values: slab };
                cluster.locality(0).send_action(halo, 1, GlobalId(0), &msg).expect("halo send");
                sent += 1;
            }
        }
    }
    cluster.wait_quiescent();
    let got = got.lock();
    assert_eq!(got.len(), sent);
    for msg in got.iter() {
        assert_eq!(msg.values.len(), SubGrid::halo_len(msg.dir));
        let reference = a.extract_halo(Field::Egas, msg.dir);
        for (a_val, b_val) in reference.iter().zip(&msg.values) {
            assert_eq!(a_val.to_bits(), b_val.to_bits(), "wire corrupted a value");
        }
    }
}
