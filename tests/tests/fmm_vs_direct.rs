//! Cross-crate accuracy: the FMM solver against direct summation on
//! trees built by the integration helpers, plus global conservation of
//! the coupled solve.

use gravity::direct::{direct_sum, PointMass};
use gravity::solver::FmmSolver;
use hydro::eos::IdealGas;
use integration_tests::{filled_uniform_tree, two_blob_profile};
use octree::subgrid::{Field, N_SUB};
use util::vec3::Vec3;

#[test]
fn fmm_potential_matches_direct_sum_within_truncation() {
    let eos = IdealGas::monatomic();
    let tree = filled_uniform_tree(12.0, 1, &eos, two_blob_profile);
    let solver = FmmSolver::new(0.5);
    let field = solver.solve(&tree);

    let domain = tree.domain();
    let mut pts = Vec::new();
    for key in tree.leaves() {
        let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
        let vol = domain.cell_volume(key.level);
        for (i, j, k) in grid.indexer().interior() {
            pts.push(PointMass {
                m: grid.at(Field::Rho, i, j, k) * vol,
                pos: domain.cell_center(key, i, j, k),
            });
        }
    }
    let reference = direct_sum(&pts);

    let mut idx = 0;
    let mut worst = 0.0f64;
    for key in tree.leaves() {
        let cells = field.leaf(key).unwrap();
        let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let ci = ((i * N_SUB as isize + j) * N_SUB as isize + k) as usize;
            let (phi_ref, _) = reference[idx];
            worst = worst.max((cells[ci].phi - phi_ref).abs() / phi_ref.abs());
            idx += 1;
        }
    }
    assert!(worst < 0.03, "FMM phi error vs direct: {worst}");
}

#[test]
fn gravitational_forces_sum_to_zero_globally() {
    let eos = IdealGas::monatomic();
    let tree = filled_uniform_tree(12.0, 1, &eos, two_blob_profile);
    let solver = FmmSolver::new(0.5);
    let field = solver.solve(&tree);
    let vol = tree.domain().cell_volume(1);
    let mut total = Vec3::ZERO;
    let mut scale = 0.0;
    for key in tree.leaves() {
        for cg in field.leaf(key).unwrap() {
            total += cg.force_density * vol;
            scale += (cg.force_density * vol).norm();
        }
    }
    assert!(
        total.norm() < 1e-12 * scale,
        "net self-force {total:?} at scale {scale}"
    );
}

#[test]
fn binary_attraction_points_between_the_stars() {
    // The two blobs must attract each other: the force on material at
    // blob 1 points towards blob 2.
    let eos = IdealGas::monatomic();
    let tree = filled_uniform_tree(12.0, 1, &eos, two_blob_profile);
    let solver = FmmSolver::new(0.5);
    let field = solver.solve(&tree);
    let domain = tree.domain();
    // Aggregate force on all material with x < 0 (blob 1 side).
    let vol = domain.cell_volume(1);
    let mut f_left = Vec3::ZERO;
    for key in tree.leaves() {
        let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
        let cells = field.leaf(key).unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            if c.x < 0.0 {
                let ci = ((i * N_SUB as isize + j) * N_SUB as isize + k) as usize;
                f_left += cells[ci].force_density * vol;
            }
        }
    }
    assert!(
        f_left.x > 0.0,
        "left blob must be pulled right (towards the companion): {f_left:?}"
    );
}

#[test]
fn interaction_counters_scale_with_tree_size() {
    let eos = IdealGas::monatomic();
    let t1 = filled_uniform_tree(12.0, 1, &eos, two_blob_profile);
    let solver = FmmSolver::new(0.5);
    let f1 = solver.solve(&t1);
    assert!(f1.interactions > 0);
    assert!(f1.kernel_launches >= t1.leaf_count() as u64);
}
