//! The futurized FMM invariant (PR tentpole): `solve_parallel` must
//! produce *bit-identical* gravity fields to the serial walk at any
//! thread count, reuse its scratch buffers in steady state, and keep
//! the driver's conservation properties intact when it powers
//! self-gravity.

use gravity::gpu::GpuContext;
use gravity::solver::{FmmSolver, GravityField};
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::QueuePolicy;
use octotiger::diagnostics::{drift, totals};
use octotiger::scenario::Scenario;
use octotiger::Simulation;
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use util::morton::MortonKey;
use util::vec3::Vec3;

fn blob(c: Vec3) -> f64 {
    let b1 = Vec3::new(-3.0, 0.5, 0.0);
    let b2 = Vec3::new(3.0, -1.0, 0.5);
    2.0 * (-(c - b1).norm2()).exp() + (-(c - b2).norm2() / 2.0).exp() + 1e-8
}

/// A two-level AMR tree: root refined, one child refined again, so the
/// solve exercises M2M, cross-level gathering, L2L, and the ledger
/// distribution — every branch of the walk.
fn amr_tree() -> Arc<Octree> {
    let mut t = Octree::new(Domain::new(16.0));
    t.refine(MortonKey::root());
    t.refine(MortonKey::new(1, 0, 0, 0));
    let domain = t.domain();
    for key in t.leaves() {
        let node = t.node_mut(key).unwrap();
        let grid = node.grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            grid.set(Field::Rho, i, j, k, blob(c));
        }
    }
    t.restrict_all();
    Arc::new(t)
}

fn assert_bit_identical(
    tree: &Octree,
    a: &gravity::solver::GravityField,
    b: &gravity::solver::GravityField,
    what: &str,
) {
    assert_eq!(a.interactions, b.interactions, "{what}: interaction count");
    for key in tree.leaves() {
        let ca = a.leaf(key).expect("leaf in serial field");
        let cb = b.leaf(key).expect("leaf in parallel field");
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.phi.to_bits(), y.phi.to_bits(), "{what}: phi");
            for (u, v) in [
                (x.g, y.g),
                (x.force_density, y.force_density),
                (x.torque_density, y.torque_density),
            ] {
                assert_eq!(u.x.to_bits(), v.x.to_bits(), "{what}: x-component");
                assert_eq!(u.y.to_bits(), v.y.to_bits(), "{what}: y-component");
                assert_eq!(u.z.to_bits(), v.z.to_bits(), "{what}: z-component");
            }
        }
    }
}

/// The hydro-only analog: a uniformly refined level-1 tree (no AMR
/// jumps) with the blob density.
fn hydro_blob_tree() -> Arc<Octree> {
    let mut t = Octree::new(Domain::new(16.0));
    t.refine_where(1, |_d, _k| true);
    let domain = t.domain();
    for key in t.leaves() {
        let node = t.node_mut(key).unwrap();
        let grid = node.grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            grid.set(Field::Rho, i, j, k, blob(c));
        }
    }
    Arc::new(t)
}

/// Serial references computed once and shared by the matrix tests and
/// the proptest below (the serial walk dominates their runtime).
fn serial_reference(star_amr: bool) -> &'static (Arc<Octree>, GravityField) {
    static BLOB: OnceLock<(Arc<Octree>, GravityField)> = OnceLock::new();
    static AMR: OnceLock<(Arc<Octree>, GravityField)> = OnceLock::new();
    let cell = if star_amr { &AMR } else { &BLOB };
    cell.get_or_init(|| {
        let tree = if star_amr { amr_tree() } else { hydro_blob_tree() };
        let serial = FmmSolver::new(0.5).solve(&tree);
        (tree, serial)
    })
}

/// One chunked parallel solve compared bit-for-bit against the cached
/// serial reference.
fn check_chunked(star_amr: bool, chunk: usize, workers: usize) {
    let (tree, serial) = serial_reference(star_amr);
    let solver = Arc::new(FmmSolver::new(0.5).with_chunk_cells(chunk));
    let rt = amt::Runtime::new(workers);
    let par = solver.solve_parallel(tree, &rt);
    let what = format!(
        "star_amr={star_amr} chunk={chunk} ({} effective) workers={workers}",
        solver.chunk_cells()
    );
    assert_eq!(
        par.interactions_same_level, serial.interactions_same_level,
        "{what}: same-level interaction count"
    );
    assert_eq!(
        par.interactions_near_field, serial.interactions_near_field,
        "{what}: near-field interaction count"
    );
    assert_bit_identical(tree, serial, &par, &what);
}

/// ISSUE 6 satellite: the chunk-size × worker matrix on the hydro-only
/// scenario. Chunk inputs 1 (one row slab), 4 (normalized up to one
/// slab), 64, and 512 (whole node) must all reproduce the serial bits.
#[test]
fn chunk_matrix_is_bit_identical_on_hydro_blob() {
    for chunk in [1usize, 4, 64, 512] {
        for workers in [1usize, 2, 4] {
            check_chunked(false, chunk, workers);
        }
    }
}

/// The same matrix on the two-level AMR star analog, which exercises
/// cross-level gathering, the root's offset kernel, and L2L.
#[test]
fn chunk_matrix_is_bit_identical_on_star_amr() {
    for chunk in [1usize, 4, 64, 512] {
        for workers in [1usize, 2, 4] {
            check_chunked(true, chunk, workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded sweep: arbitrary chunk sizes (normalization included) and
    /// worker counts never change a bit on either scenario.
    #[test]
    fn random_chunk_sizes_never_change_bits(
        chunk in 1usize..513,
        workers in 1usize..5,
        scenario in 0usize..2,
    ) {
        check_chunked(scenario == 1, chunk, workers);
    }
}

#[test]
fn fmm_parallel_matches_serial() {
    let tree = amr_tree();
    let solver = Arc::new(FmmSolver::new(0.5));
    let serial = solver.solve(&tree);
    for threads in [1, 4] {
        let rt = amt::Runtime::new(threads);
        let par = solver.solve_parallel(&tree, &rt);
        assert_bit_identical(&tree, &serial, &par, &format!("{threads} threads"));
        assert_eq!(
            par.kernel_launches,
            par.kernel_launches_cpu + par.kernel_launches_gpu
        );
    }
}

#[test]
fn fmm_parallel_through_gpu_streams_matches_serial() {
    let tree = amr_tree();
    let serial = FmmSolver::new(0.5).solve(&tree);
    let dev = Device::new(DeviceSpec::p100(), 4);
    let solver = Arc::new(FmmSolver::with_gpu(
        0.5,
        GpuContext::new(&dev, 4, QueuePolicy::CpuFallback),
    ));
    let rt = amt::Runtime::new(4);
    let par = solver.solve_parallel(&tree, &rt);
    assert_bit_identical(&tree, &serial, &par, "gpu-routed");
    // The split is workload-dependent, but every launch lands somewhere
    // and the device saw the GPU-side ones.
    assert_eq!(
        par.kernel_launches,
        par.kernel_launches_cpu + par.kernel_launches_gpu
    );
    assert!(par.kernel_launches > 0);
    let stats = solver.gpu().unwrap().stats();
    assert_eq!(stats.gpu_launches(), par.kernel_launches_gpu);
    assert_eq!(stats.cpu_launches(), par.kernel_launches_cpu);
    assert_eq!(rt.counters().get("fmm/kernels/gpu"), par.kernel_launches_gpu);
    assert_eq!(rt.counters().get("fmm/kernels/cpu"), par.kernel_launches_cpu);
}

#[test]
fn steady_state_solves_allocate_no_scratch() {
    let tree = amr_tree();
    let solver = Arc::new(FmmSolver::new(0.5));
    let rt = amt::Runtime::new(4);
    solver.solve_parallel(&tree, &rt); // cold start may allocate
    let misses = solver.scratch().misses();
    for _ in 0..3 {
        solver.solve_parallel(&tree, &rt);
    }
    assert_eq!(
        solver.scratch().misses(),
        misses,
        "steady-state solves must serve all scratch from the pool"
    );
    assert!(solver.scratch().hits() > 0);
    assert_eq!(rt.counters().get("fmm/scratch_misses"), misses);
    assert_eq!(rt.counters().get("fmm/scratch_hits"), solver.scratch().hits());
}

#[test]
fn centered_star_conserves_with_parallel_gravity() {
    // The driver-level regression: a centered, compactly supported
    // density profile (a polytrope in near-vacuum) evolved with
    // self-gravity on, where solve_gravity runs the futurized FMM.
    // Momentum and angular momentum must stay at machine precision (the
    // FMM's conservation-grade force density and torque ledger); mass
    // drift is bounded by the floor-level ambient crossing the outflow
    // boundary.
    let mut sim = Simulation::new(Scenario::single_star(1));
    let start = totals(sim.tree(), None);
    sim.step(); // warm-up: the solver's scratch pool fills here
    let misses_after_warmup = sim.runtime().counters().get("fmm/scratch_misses");
    for _ in 0..2 {
        sim.step();
    }
    let end = totals(sim.tree(), None);
    let mom_scale = start.mass;
    let d = drift(&start, &end, mom_scale, mom_scale);
    assert!(d.mass < 1e-9, "mass drift {}", d.mass);
    assert!(d.momentum < 1e-12, "momentum drift {}", d.momentum);
    assert!(d.angular < 1e-12, "angular momentum drift {}", d.angular);
    // Steady-state steps perform zero scratch heap allocations: the
    // miss counter must not move after the warm-up step.
    assert_eq!(
        sim.runtime().counters().get("fmm/scratch_misses"),
        misses_after_warmup,
        "steady-state step() allocated FMM scratch buffers"
    );
    assert!(sim.runtime().counters().get("fmm/scratch_hits") > 0);
}
