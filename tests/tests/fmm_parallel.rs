//! The futurized FMM invariant (PR tentpole): `solve_parallel` must
//! produce *bit-identical* gravity fields to the serial walk at any
//! thread count, reuse its scratch buffers in steady state, and keep
//! the driver's conservation properties intact when it powers
//! self-gravity.

use gravity::gpu::GpuContext;
use gravity::solver::FmmSolver;
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::QueuePolicy;
use octotiger::diagnostics::{drift, totals};
use octotiger::scenario::Scenario;
use octotiger::Simulation;
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use std::sync::Arc;
use util::morton::MortonKey;
use util::vec3::Vec3;

fn blob(c: Vec3) -> f64 {
    let b1 = Vec3::new(-3.0, 0.5, 0.0);
    let b2 = Vec3::new(3.0, -1.0, 0.5);
    2.0 * (-(c - b1).norm2()).exp() + (-(c - b2).norm2() / 2.0).exp() + 1e-8
}

/// A two-level AMR tree: root refined, one child refined again, so the
/// solve exercises M2M, cross-level gathering, L2L, and the ledger
/// distribution — every branch of the walk.
fn amr_tree() -> Arc<Octree> {
    let mut t = Octree::new(Domain::new(16.0));
    t.refine(MortonKey::root());
    t.refine(MortonKey::new(1, 0, 0, 0));
    let domain = t.domain();
    for key in t.leaves() {
        let node = t.node_mut(key).unwrap();
        let grid = node.grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            grid.set(Field::Rho, i, j, k, blob(c));
        }
    }
    t.restrict_all();
    Arc::new(t)
}

fn assert_bit_identical(
    tree: &Octree,
    a: &gravity::solver::GravityField,
    b: &gravity::solver::GravityField,
    what: &str,
) {
    assert_eq!(a.interactions, b.interactions, "{what}: interaction count");
    for key in tree.leaves() {
        let ca = a.leaf(key).expect("leaf in serial field");
        let cb = b.leaf(key).expect("leaf in parallel field");
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.phi.to_bits(), y.phi.to_bits(), "{what}: phi");
            for (u, v) in [
                (x.g, y.g),
                (x.force_density, y.force_density),
                (x.torque_density, y.torque_density),
            ] {
                assert_eq!(u.x.to_bits(), v.x.to_bits(), "{what}: x-component");
                assert_eq!(u.y.to_bits(), v.y.to_bits(), "{what}: y-component");
                assert_eq!(u.z.to_bits(), v.z.to_bits(), "{what}: z-component");
            }
        }
    }
}

#[test]
fn fmm_parallel_matches_serial() {
    let tree = amr_tree();
    let solver = Arc::new(FmmSolver::new(0.5));
    let serial = solver.solve(&tree);
    for threads in [1, 4] {
        let rt = amt::Runtime::new(threads);
        let par = solver.solve_parallel(&tree, &rt);
        assert_bit_identical(&tree, &serial, &par, &format!("{threads} threads"));
        assert_eq!(
            par.kernel_launches,
            par.kernel_launches_cpu + par.kernel_launches_gpu
        );
    }
}

#[test]
fn fmm_parallel_through_gpu_streams_matches_serial() {
    let tree = amr_tree();
    let serial = FmmSolver::new(0.5).solve(&tree);
    let dev = Device::new(DeviceSpec::p100(), 4);
    let solver = Arc::new(FmmSolver::with_gpu(
        0.5,
        GpuContext::new(&dev, 4, QueuePolicy::CpuFallback),
    ));
    let rt = amt::Runtime::new(4);
    let par = solver.solve_parallel(&tree, &rt);
    assert_bit_identical(&tree, &serial, &par, "gpu-routed");
    // The split is workload-dependent, but every launch lands somewhere
    // and the device saw the GPU-side ones.
    assert_eq!(
        par.kernel_launches,
        par.kernel_launches_cpu + par.kernel_launches_gpu
    );
    assert!(par.kernel_launches > 0);
    let stats = solver.gpu().unwrap().stats();
    assert_eq!(stats.gpu_launches(), par.kernel_launches_gpu);
    assert_eq!(stats.cpu_launches(), par.kernel_launches_cpu);
    assert_eq!(rt.counters().get("fmm/kernels/gpu"), par.kernel_launches_gpu);
    assert_eq!(rt.counters().get("fmm/kernels/cpu"), par.kernel_launches_cpu);
}

#[test]
fn steady_state_solves_allocate_no_scratch() {
    let tree = amr_tree();
    let solver = Arc::new(FmmSolver::new(0.5));
    let rt = amt::Runtime::new(4);
    solver.solve_parallel(&tree, &rt); // cold start may allocate
    let misses = solver.scratch().misses();
    for _ in 0..3 {
        solver.solve_parallel(&tree, &rt);
    }
    assert_eq!(
        solver.scratch().misses(),
        misses,
        "steady-state solves must serve all scratch from the pool"
    );
    assert!(solver.scratch().hits() > 0);
    assert_eq!(rt.counters().get("fmm/scratch_misses"), misses);
    assert_eq!(rt.counters().get("fmm/scratch_hits"), solver.scratch().hits());
}

#[test]
fn centered_star_conserves_with_parallel_gravity() {
    // The driver-level regression: a centered, compactly supported
    // density profile (a polytrope in near-vacuum) evolved with
    // self-gravity on, where solve_gravity runs the futurized FMM.
    // Momentum and angular momentum must stay at machine precision (the
    // FMM's conservation-grade force density and torque ledger); mass
    // drift is bounded by the floor-level ambient crossing the outflow
    // boundary.
    let mut sim = Simulation::new(Scenario::single_star(1));
    let start = totals(sim.tree(), None);
    sim.step(); // warm-up: the solver's scratch pool fills here
    let misses_after_warmup = sim.runtime().counters().get("fmm/scratch_misses");
    for _ in 0..2 {
        sim.step();
    }
    let end = totals(sim.tree(), None);
    let mom_scale = start.mass;
    let d = drift(&start, &end, mom_scale, mom_scale);
    assert!(d.mass < 1e-9, "mass drift {}", d.mass);
    assert!(d.momentum < 1e-12, "momentum drift {}", d.momentum);
    assert!(d.angular < 1e-12, "angular momentum drift {}", d.angular);
    // Steady-state steps perform zero scratch heap allocations: the
    // miss counter must not move after the warm-up step.
    assert_eq!(
        sim.runtime().counters().get("fmm/scratch_misses"),
        misses_after_warmup,
        "steady-state step() allocated FMM scratch buffers"
    );
    assert!(sim.runtime().counters().get("fmm/scratch_hits") > 0);
}
