//! Full-pipeline integration: scenarios through the complete driver
//! (AMR + halo + FMM + hydro + rotating frame), checking invariants the
//! paper claims.

use octotiger::diagnostics::{drift, totals};
use octotiger::{Scenario, Simulation};
use octree::subgrid::{Field, PASSIVE_SCALARS};
use util::vec3::Vec3;

#[test]
fn mini_binary_runs_with_all_physics_enabled() {
    let scenario = Scenario::mini_binary(2);
    assert!(scenario.config.gravity);
    assert!(scenario.config.omega > 0.0);
    let mut sim = Simulation::new(scenario);
    let start = totals(sim.tree(), None);
    for _ in 0..2 {
        let dt = sim.step();
        assert!(dt.is_finite() && dt > 0.0);
    }
    let end = totals(sim.tree(), None);
    // Mass conserved up to positivity-floor injections at the
    // under-resolved stellar edges (PPM undershoots on 8-decade density
    // contrasts get floored; see HydroStepper::enforce_floors).
    let d = drift(&start, &end, start.mass, start.mass);
    assert!(d.mass < 1e-3, "mass drift {}", d.mass);
    // Everything stays finite and the tree stays valid.
    sim.tree().check_invariants();
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            assert!(grid.at(Field::Rho, i, j, k).is_finite());
            assert!(grid.at(Field::Rho, i, j, k) > 0.0, "density must stay positive (floor)");
            assert!(grid.at(Field::Egas, i, j, k).is_finite());
        }
    }
}

#[test]
fn passive_scalars_keep_partitioning_the_mass() {
    // §4.2: the five passive scalars evolve with the same continuity
    // equation as density, so their sum tracks rho. The PPM limiter is
    // nonlinear (the reconstruction of a sum is not the sum of
    // reconstructions), so the partition holds to truncation order, not
    // round-off — a few percent at this very coarse resolution.
    let mut sim = Simulation::new(Scenario::mini_binary(2));
    for _ in 0..2 {
        sim.step();
    }
    // Near-vacuum atmosphere cells have no meaningful relative scale;
    // check the partition where there is actual matter.
    let mut rho_peak: f64 = 0.0;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            rho_peak = rho_peak.max(grid.at(Field::Rho, i, j, k));
        }
    }
    let mut worst: f64 = 0.0;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let rho = grid.at(Field::Rho, i, j, k);
            if rho < 1e-6 * rho_peak {
                continue;
            }
            let sum: f64 = PASSIVE_SCALARS
                .iter()
                .map(|f| grid.at(*f, i, j, k))
                .sum();
            worst = worst.max((sum - rho).abs() / rho);
        }
    }
    // At this deliberately coarse resolution the nonlinear limiter
    // mismatch between sum-of-scalars and density reconstructions is
    // large near the stellar edges; the guard is against gross
    // machinery errors (lost/duplicated scalar fluxes), not truncation.
    assert!(
        worst < 0.25,
        "passive scalars diverged from the density by {worst}"
    );
}

#[test]
fn moving_star_advects_at_the_right_speed() {
    let v = Vec3::new(0.3, 0.0, 0.0);
    let res = octotiger::verification::run_star(1, v, 5);
    // CoM displacement error small relative to the star radius (1.0).
    assert!(
        res.com_drift < 0.05,
        "moving star com error {}",
        res.com_drift
    );
    assert!(res.mass_drift < 1e-8, "mass drift {}", res.mass_drift);
}

#[test]
fn deeper_amr_keeps_the_binary_resolved() {
    let s3 = Scenario::mini_binary(2);
    let s4 = Scenario::mini_binary(3);
    assert!(s4.tree.leaf_count() > s3.tree.leaf_count());
    // The refined tree resolves a higher central density (less
    // smearing of the polytropic peak).
    let peak = |scenario: &Scenario| -> f64 {
        let mut p = 0.0f64;
        for key in scenario.tree.leaves() {
            let grid = scenario.tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                p = p.max(grid.at(Field::Rho, i, j, k));
            }
        }
        p
    };
    assert!(peak(&s4) > peak(&s3));
}

#[test]
fn scheduler_counters_reflect_futurized_work() {
    let mut sim = Simulation::new(Scenario::sod(1));
    sim.step();
    let executed = sim.runtime().counters().get("tasks/executed");
    // At least one task per leaf per RK stage.
    assert!(
        executed >= 2 * sim.tree().leaf_count() as u64,
        "only {executed} tasks executed"
    );
}
