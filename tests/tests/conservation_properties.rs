//! Property-based cross-crate conservation tests: the machine-precision
//! claims must hold for *arbitrary* admissible states, not just the
//! hand-picked ones.

use gravity::expansion::LocalExpansion;
use gravity::multipole::Multipole;
use hydro::eos::IdealGas;
use hydro::step::HydroStepper;
use octree::subgrid::{Field, SubGrid, N_SUB};
use proptest::prelude::*;
use util::vec3::Vec3;

/// Strategy: an admissible random sub-grid (positive density and
/// internal energy, bounded velocities), filled interior + ghosts so
/// the flux sweep sees a consistent medium.
fn random_subgrid() -> impl Strategy<Value = SubGrid> {
    (
        proptest::collection::vec(0.1f64..10.0, 64),
        proptest::collection::vec(-1.0f64..1.0, 64),
        proptest::collection::vec(0.1f64..5.0, 64),
    )
        .prop_map(|(rhos, vels, es)| {
            let eos = IdealGas::monatomic();
            let mut g = SubGrid::new();
            let indexer = g.indexer();
            for (i, j, k) in indexer.all() {
                // Hash the coordinates into the sample tables so ghosts
                // continue the interior pattern smoothly.
                let h = ((i * 31 + j * 17 + k * 7).rem_euclid(64)) as usize;
                let rho = rhos[h];
                let v = Vec3::new(vels[h], vels[(h + 13) % 64], vels[(h + 29) % 64]) * 0.3;
                let e = es[h];
                g.set(Field::Rho, i, j, k, rho);
                g.set(Field::Sx, i, j, k, rho * v.x);
                g.set(Field::Sy, i, j, k, rho * v.y);
                g.set(Field::Sz, i, j, k, rho * v.z);
                g.set(Field::Egas, i, j, k, e + 0.5 * rho * v.norm2());
                g.set(Field::Tau, i, j, k, eos.tau_from_e(e));
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The flux-sweep RHS is finite and the spin ledger is bounded by
    /// the momentum fluxes for arbitrary admissible data.
    #[test]
    fn hydro_rhs_is_finite_and_bounded(grid in random_subgrid()) {
        let stepper = HydroStepper::new(IdealGas::monatomic());
        let rhs = stepper.dudt(&grid, 0.25);
        for du in &rhs {
            for v in du.iter() {
                prop_assert!(v.is_finite(), "non-finite RHS entry");
            }
        }
    }

    /// Gravity pair interactions cancel to round-off for arbitrary
    /// multipoles (linear momentum) and the torque ledger closes the
    /// angular budget.
    #[test]
    fn gravity_pair_conservation(
        m1 in 0.1f64..10.0, m2 in 0.1f64..10.0,
        px in 3.0f64..8.0, py in -4.0f64..4.0, pz in -4.0f64..4.0,
        q1 in proptest::array::uniform6(-0.5f64..0.5),
        q2 in proptest::array::uniform6(-0.5f64..0.5),
    ) {
        let a = Multipole { m: m1, com: Vec3::ZERO, q: q1 };
        let b = Multipole { m: m2, com: Vec3::new(px, py, pz), q: q2 };
        let d = a.com - b.com;
        let mut la = LocalExpansion::default();
        la.accumulate(&a, &b, d);
        let mut lb = LocalExpansion::default();
        lb.accumulate(&b, &a, -d);
        let f_scale = la.force.norm().max(lb.force.norm()).max(1e-300);
        prop_assert!(
            (la.force + lb.force).norm() <= 32.0 * f64::EPSILON * f_scale,
            "momentum residual {:?}", la.force + lb.force
        );
        let orbital = a.com.cross(la.force) + b.com.cross(lb.force);
        let total = orbital + la.torque + lb.torque;
        let t_scale = b.com.cross(lb.force).norm().max(la.torque.norm()).max(1.0);
        prop_assert!(
            total.norm() <= 256.0 * f64::EPSILON * t_scale,
            "angular residual {:?} at scale {t_scale}", total
        );
    }

    /// Conservative prolongation/restriction roundtrips preserve every
    /// field total for arbitrary sub-grids.
    #[test]
    fn amr_transfer_conserves_all_fields(grid in random_subgrid()) {
        use octree::prolong::{prolong_octant, restrict_into_octant};
        let mut back = SubGrid::new();
        for octant in 0..8u8 {
            let child = prolong_octant(&grid, octant);
            restrict_into_octant(&child, &mut back, octant);
        }
        for f in octree::subgrid::ALL_FIELDS {
            let a = grid.interior_sum(f);
            let b = back.interior_sum(f);
            prop_assert!(
                (a - b).abs() <= 1e-11 * a.abs().max(1.0),
                "field {f:?}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn spin_ledger_closes_hydro_angular_budget_on_random_shear() {
    // Deterministic end-to-end check: for an arbitrary (here seeded)
    // state with periodic-like ghosts, the total angular-momentum RHS
    // (orbital from momentum RHS + spin ledger) telescopes to the
    // boundary terms only. We verify the interior contribution by
    // comparing against an explicitly computed boundary-flux budget on
    // a *uniform-ghost* state where the boundary terms vanish by
    // symmetry in y/z.
    let eos = IdealGas::monatomic();
    let stepper = HydroStepper::new(eos);
    let mut g = SubGrid::new();
    let indexer = g.indexer();
    for (i, j, k) in indexer.all() {
        // Variation only along x; uniform in y/z so all y/z boundary
        // torque terms cancel pairwise.
        let rho = 1.0 + 0.3 * ((i.rem_euclid(4)) as f64);
        let vy = 0.2 * ((i.rem_euclid(3)) as f64 - 1.0);
        g.set(Field::Rho, i, j, k, rho);
        g.set(Field::Sy, i, j, k, rho * vy);
        g.set(Field::Egas, i, j, k, 2.0 + 0.5 * rho * vy * vy);
        g.set(Field::Tau, i, j, k, eos.tau_from_e(2.0));
    }
    let dx = 0.5;
    let rhs = stepper.dudt(&g, dx);
    // Total z-angular-momentum rate over the interior: r x ds/dt + dl/dt.
    let mut total_lz = 0.0;
    let n = N_SUB as isize;
    let mut idx = 0;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let r = Vec3::new(
                    (i as f64 + 0.5) * dx,
                    (j as f64 + 0.5) * dx,
                    (k as f64 + 0.5) * dx,
                );
                let ds = Vec3::new(
                    rhs[idx][Field::Sx.idx()],
                    rhs[idx][Field::Sy.idx()],
                    rhs[idx][Field::Sz.idx()],
                );
                total_lz += r.cross(ds).z + rhs[idx][Field::Lz.idx()];
                idx += 1;
            }
        }
    }
    // The budget reduces to x-boundary face terms: r_f x F at the two
    // x-faces of the box. Compute them from the same reconstruction by
    // summing momentum-flux moments on the boundary columns... here we
    // simply assert the interior telescoping left a value consistent
    // with boundary fluxes: bounded by the flux scale, not the naive
    // sum of |r x ds| magnitudes (which is ~50x larger).
    let gross: f64 = (0..rhs.len())
        .map(|q| {
            Vec3::new(
                rhs[q][Field::Sx.idx()],
                rhs[q][Field::Sy.idx()],
                rhs[q][Field::Sz.idx()],
            )
            .norm()
        })
        .sum::<f64>()
        * dx
        * 8.0;
    assert!(
        total_lz.abs() < gross,
        "angular budget {total_lz} out of all proportion to flux scale {gross}"
    );
}
