//! End-to-end checks of the trace-calibrated scale-out co-simulation
//! (`perfmodel::calibrate` + `perfmodel::des`): a calibration extracted
//! from a *real* traced distributed run must drive the DES to sane
//! Figure-2/3 shapes, and the whole pipeline must be seed-deterministic
//! down to the f64 bits.
//!
//! Trace sessions are process-global and exclusive; like the other
//! integration tests, anything that begins one serializes on
//! `TraceSession::begin`.

use amt::trace::TraceSession;
use hydro::eos::IdealGas;
use integration_tests::{filled_uniform_tree, two_blob_profile};
use octotiger::{Config, DistributedDriver, Scenario, Simulation};
use octree::shard::ShardMap;
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use perfmodel::scaling::v1309_structure_tree;
use perfmodel::{
    simulate_scaleout, sweep_cadence, Calibration, CheckpointCost, CommPattern, DesOpts,
    Measurements,
};
use std::sync::Arc;

fn blob_scenario() -> Scenario {
    let eos = IdealGas::monatomic();
    let tree = filled_uniform_tree(8.0, 2, &eos, two_blob_profile);
    Scenario {
        name: "two_blob_gravity",
        tree,
        config: Config { eos, ..Config::self_gravitating() },
        binary: None,
    }
}

/// Same tree, same calibration, same opts → bit-identical results, on
/// every transport; a different seed must actually change the outcome.
#[test]
fn co_simulation_is_bit_deterministic() {
    let tree = v1309_structure_tree(10);
    let pattern = CommPattern::from_tree(&tree, 64).expect("pattern");
    let calib = Calibration::synthetic(400_000, 3.0, 12);
    for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
        let opts = DesOpts { steps: 3, seed: 0xDE5 };
        let a = simulate_scaleout(&pattern, kind, &calib, &opts).expect("run a");
        let b = simulate_scaleout(&pattern, kind, &calib, &opts).expect("run b");
        assert_eq!(
            a.point.step_time_s.to_bits(),
            b.point.step_time_s.to_bits(),
            "{kind:?}: same seed must reproduce the step time bit-for-bit"
        );
        let bits = |r: &perfmodel::ScaleoutResult| {
            r.step_times_s.iter().map(|t| t.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b), "{kind:?}: per-step times must match bit-for-bit");
        let c = simulate_scaleout(&pattern, kind, &calib, &DesOpts { steps: 3, seed: 0xDE6 })
            .expect("run c");
        assert_ne!(
            a.point.step_time_s.to_bits(),
            c.point.step_time_s.to_bits(),
            "{kind:?}: a different seed must perturb the sampled outcome"
        );
    }
}

/// Calibrate from a real traced 2-locality run, then drive the DES with
/// it: the round trip must preserve the measured facts and produce
/// finite, transport-sensitive scaling points.
#[test]
fn calibration_roundtrip_drives_the_des() {
    let plan_tree = blob_scenario().tree;
    let map = ShardMap::partition(&plan_tree, 2).expect("shard map");
    let plan_parcels_per_step: u64 = map
        .halo_push_plan(&plan_tree)
        .iter()
        .flat_map(|by_dst| by_dst.values())
        .map(|keys| keys.len() as u64)
        .sum();
    assert!(plan_parcels_per_step > 0, "2-shard plan must exchange halos");

    let cluster = Arc::new(
        Cluster::builder()
            .localities(2)
            .threads_per(2)
            .transport(TransportKind::Libfabric)
            .build(),
    );
    let mut driver = DistributedDriver::new(blob_scenario(), cluster).expect("driver");
    let session = TraceSession::begin();
    for _ in 0..2 {
        driver.step().expect("distributed step");
    }
    let trace = session.end();
    let metrics = driver.cluster().metrics().snapshot();
    let subgrids = map.n_leaves();

    let calib = Calibration::from_measurements(&Measurements {
        trace: &trace,
        metrics: &metrics,
        subgrids,
        steps: 2,
        threads: 2,
        transport: TransportKind::Libfabric,
        plan_parcels_per_step,
        agg_items: 64,
        agg_batches: 8,
        launch_overhead_us: 5.0,
        checkpoint: CheckpointCost { encode_s: 1e-3, restore_s: 1e-2, subgrids },
    })
    .expect("calibration from measured run");

    // The measured facts must survive extraction.
    assert!(
        calib.kernels.iter().any(|k| k.hist.count() > 0),
        "a self-gravitating run must measure at least one kernel category"
    );
    assert!(calib.mean_compute_ns_per_subgrid() > 0.0);
    assert!(calib.utilization > 0.0 && calib.utilization <= 1.0);
    assert!(calib.parcel_bytes.count() > 0, "parcel sizes must be measured");
    assert!(calib.parcel_send_cpu.count() > 0, "send CPU must be measured");
    assert!(calib.parcel_recv_cpu.count() > 0, "recv CPU must be measured");
    assert!(calib.parcel_amplification >= 1.0);

    // And drive the DES to finite, scale-sensitive results.
    let tree = v1309_structure_tree(10);
    let opts = DesOpts::default();
    let mut prev = f64::INFINITY;
    for localities in [1usize, 4, 16] {
        let pattern = CommPattern::from_tree(&tree, localities).expect("pattern");
        let r = simulate_scaleout(&pattern, TransportKind::Libfabric, &calib, &opts)
            .expect("co-simulation");
        assert!(
            r.point.step_time_s.is_finite() && r.point.step_time_s > 0.0,
            "step time must be finite and positive at {localities} localities"
        );
        assert!(
            r.point.step_time_s < prev,
            "throughput must still scale at small locality counts"
        );
        prev = r.point.step_time_s;
    }
}

/// Fig 3 shape at small N: the libfabric:MPI throughput ratio must not
/// shrink as localities grow, and the cadence sweep must be reusable
/// from the same calibration.
#[test]
fn transport_ratio_grows_and_cadence_sweep_runs() {
    let tree = v1309_structure_tree(10);
    let mut calib = Calibration::synthetic(400_000, 3.0, 12);
    calib.parcel_amplification = 10.0;
    let opts = DesOpts::default();
    let mut ratios = Vec::new();
    for localities in [1usize, 16, 64] {
        let pattern = CommPattern::from_tree(&tree, localities).expect("pattern");
        let mpi = simulate_scaleout(&pattern, TransportKind::Mpi, &calib, &opts).expect("mpi");
        let lf = simulate_scaleout(&pattern, TransportKind::Libfabric, &calib, &opts)
            .expect("libfabric");
        ratios.push(lf.point.subgrids_per_second / mpi.point.subgrids_per_second);
    }
    // Nondecreasing up to sampling noise: once comm saturates, the
    // ratio plateaus at the per-message CPU ratio and jitters a little.
    assert!(
        ratios.windows(2).all(|w| w[1] >= w[0] * 0.95),
        "libfabric:MPI ratio must be nondecreasing in scale, got {ratios:?}"
    );
    assert!(
        ratios[ratios.len() - 1] > ratios[0],
        "communication pressure at 64 localities must favor libfabric, got {ratios:?}"
    );

    let points =
        sweep_cadence(0.5, 1024, 4096, &calib, 86_400.0, &[1, 3, 10, 30, 100], 2_000, 42);
    assert_eq!(points.len(), 5);
    assert!(points.iter().all(|p| p.overhead >= 1.0 && p.wall_s.is_finite()));
    let best = points
        .iter()
        .min_by(|a, b| a.overhead.total_cmp(&b.overhead))
        .expect("nonempty sweep");
    assert!(
        best.cadence != 1 && best.cadence != 100,
        "optimum cadence must be interior to the sweep, got {}",
        best.cadence
    );
}
