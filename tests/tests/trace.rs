//! Correctness of the `amt::trace` observability layer: spans nest per
//! worker, idle accounting matches wall − busy, traces survive the wire
//! codec, tracing is invisible when disabled (no counters, bit-identical
//! distributed results).
//!
//! Trace sessions are process-global and exclusive; concurrent tests in
//! this binary serialize on `TraceSession::begin` and attribute events
//! through each scheduler's `worker_trace_ids`, so foreign workers
//! recording into their own rings never pollute an assertion.

use amt::trace::{TraceCategory, TraceEvent, TraceSession};
use amt::Runtime;
use octotiger::{DistributedDriver, Scenario, Simulation};
use octree::subgrid::ALL_FIELDS;
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use parcelport::{from_bytes, to_bytes};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn events_of<'a>(events: &'a [TraceEvent], tids: &[u32]) -> Vec<&'a TraceEvent> {
    events.iter().filter(|e| tids.contains(&e.tid)).collect()
}

/// Spans recorded by one worker must strictly nest: any two either are
/// disjoint in time or one contains the other. Instants are ignored.
#[test]
fn spans_nest_per_worker() {
    let rt = Runtime::new(2);
    let session = TraceSession::begin();
    for _ in 0..16 {
        rt.scheduler().spawn(|| {
            let _outer = amt::trace::span(TraceCategory::Custom);
            std::thread::sleep(Duration::from_micros(300));
            {
                let _inner = amt::trace::span(TraceCategory::Custom);
                std::thread::sleep(Duration::from_micros(200));
            }
            std::thread::sleep(Duration::from_micros(100));
        });
    }
    rt.wait_quiescent();
    let trace = session.end();
    let tids = rt.scheduler().worker_trace_ids();
    assert_eq!(tids.len(), 2, "both workers must have registered");
    for &tid in &tids {
        let spans: Vec<&TraceEvent> = events_of(&trace.events, &[tid])
            .into_iter()
            .filter(|e| e.dur_ns > 0)
            .collect();
        for (i, a) in spans.iter().enumerate() {
            for b in spans.iter().skip(i + 1) {
                let disjoint = a.end_ns() <= b.t0_ns || b.end_ns() <= a.t0_ns;
                let a_in_b = b.t0_ns <= a.t0_ns && a.end_ns() <= b.end_ns();
                let b_in_a = a.t0_ns <= b.t0_ns && b.end_ns() <= a.end_ns();
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "worker {tid}: spans overlap without nesting:\n  {a:?}\n  {b:?}"
                );
            }
        }
    }
    // The workload itself must have been observed. `wait_quiescent`
    // help-runs tasks on the calling thread, so count across all
    // threads, not just the two workers.
    let custom = trace.events.iter().filter(|e| e.cat == TraceCategory::Custom).count();
    assert_eq!(custom, 32, "16 outer + 16 inner spans");
}

/// On a single worker, recorded idle time must account for the gap
/// between wall-clock and busy (task-run) time.
#[test]
fn idle_accounts_for_wall_minus_busy() {
    let rt = Runtime::new(1);
    let session = TraceSession::begin();
    // Two bursts of work separated by an enforced idle gap. Drain each
    // burst by polling instead of `wait_quiescent`, which would help-run
    // tasks on this thread and take them away from the traced worker.
    let drain = |rt: &Arc<Runtime>| {
        while rt.scheduler().in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    };
    for burst in 0..2 {
        for _ in 0..4 {
            rt.scheduler().spawn(|| std::thread::sleep(Duration::from_millis(5)));
        }
        drain(&rt);
        if burst == 0 {
            std::thread::sleep(Duration::from_millis(40));
        }
    }
    let trace = session.end();
    let tids = rt.scheduler().worker_trace_ids();
    let events = events_of(&trace.events, &tids);
    let spans: Vec<_> = events.iter().filter(|e| e.dur_ns > 0).collect();
    assert!(!spans.is_empty());
    let wall = spans.iter().map(|e| e.end_ns()).max().unwrap()
        - spans.iter().map(|e| e.t0_ns).min().unwrap();
    let busy: u64 = spans
        .iter()
        .filter(|e| e.cat == TraceCategory::TaskRun)
        .map(|e| e.dur_ns)
        .sum();
    let idle: u64 = spans
        .iter()
        .filter(|e| e.cat == TraceCategory::Idle)
        .map(|e| e.dur_ns)
        .sum();
    assert!(busy >= 8 * 5_000_000, "8 tasks × 5 ms each: busy = {busy} ns");
    assert!(idle >= 30_000_000, "the 40 ms gap must be recorded: idle = {idle} ns");
    let expected = wall.saturating_sub(busy);
    let err = idle.abs_diff(expected);
    assert!(
        err <= wall / 4,
        "idle {idle} ns vs wall − busy {expected} ns (wall {wall} ns)"
    );
}

/// A drained trace survives the shim serde wire codec and re-exports
/// the exact same chrome JSON.
#[test]
fn trace_round_trips_through_wire_codec() {
    let rt = Runtime::new(2);
    let session = TraceSession::begin();
    for i in 0..8 {
        rt.scheduler().spawn(move || {
            let _s = amt::trace::span_labeled(TraceCategory::Custom, || format!("task {i}"));
            std::thread::sleep(Duration::from_micros(200));
        });
    }
    rt.wait_quiescent();
    let trace = session.end();
    assert!(!trace.events.is_empty());
    let bytes = to_bytes(&trace).expect("trace serializes");
    let back: amt::Trace = from_bytes(&bytes).expect("trace deserializes");
    assert_eq!(trace, back);
    assert_eq!(trace.export_chrome_json(), back.export_chrome_json());
}

/// Without an active session nothing is recorded and nothing leaks into
/// the metrics namespace: `trace/*` counters exist only after an
/// explicit `Trace::publish`.
#[test]
fn disabled_tracing_registers_no_counters() {
    let mut sim = Simulation::new(Scenario::single_star(1));
    sim.step();
    let snap = sim.runtime().metrics().snapshot();
    assert!(
        !snap.keys().any(|k| k.starts_with("trace/")),
        "no trace/ counters without a session: {:?}",
        snap.keys().filter(|k| k.starts_with("trace/")).collect::<Vec<_>>()
    );
    // Publishing a drained trace is what creates them.
    let session = TraceSession::begin();
    sim.step();
    let trace = session.end();
    trace.publish(sim.runtime().metrics());
    let snap = sim.runtime().metrics().snapshot();
    assert!(snap.contains_key("trace/events"));
    assert!(snap.contains_key("trace/idle_rate"));
    assert!(snap.get("trace/events").copied().unwrap_or(0) > 0);
}

/// Per-(node, field) interior digests of a tree, for order-insensitive
/// bitwise comparison.
fn field_digests(tree: &octree::tree::Octree) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for level in 0..=tree.max_level() {
        for key in tree.level_keys(level) {
            let Some(grid) = tree.node(key).and_then(|n| n.grid.as_ref()) else {
                continue;
            };
            for field in ALL_FIELDS {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for (i, j, k) in grid.indexer().interior() {
                    h ^= grid.at(field, i, j, k).to_bits();
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                out.insert(format!("{key:?}/{field:?}"), h);
            }
        }
    }
    out
}

/// Tracing must only observe: a distributed run with a live session
/// produces bit-identical dts and state to one without.
#[test]
fn tracing_does_not_perturb_distributed_results() {
    let run = |traced: bool| {
        let cluster = Arc::new(
            Cluster::builder()
                .localities(2)
                .threads_per(2)
                .transport(TransportKind::Libfabric)
                .build(),
        );
        let mut driver =
            DistributedDriver::new(Scenario::single_star(1), cluster).expect("driver");
        let session = traced.then(TraceSession::begin);
        let dts: Vec<u64> = (0..2).map(|_| driver.step().expect("step").to_bits()).collect();
        let trace = session.map(TraceSession::end);
        (dts, field_digests(&driver.assemble()), trace)
    };
    let (dts_off, state_off, _) = run(false);
    let (dts_on, state_on, trace) = run(true);
    assert_eq!(dts_off, dts_on, "per-step dt must be bit-identical");
    assert_eq!(state_off, state_on, "assembled state must be bit-identical");
    // The traced run actually observed the distributed machinery.
    let trace = trace.unwrap();
    for cat in [
        TraceCategory::Step,
        TraceCategory::DtReduce,
        TraceCategory::Barrier,
        TraceCategory::ParcelSend,
        TraceCategory::ParcelRecv,
    ] {
        assert!(
            trace.events.iter().any(|e| e.cat == cat),
            "expected at least one {cat:?} event"
        );
    }
}
