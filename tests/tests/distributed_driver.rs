//! Distributed determinism suite: the sharded TVD-RK2 driver must be
//! **bit-identical** to the single-locality reference at 1, 2, and 4
//! localities over both parcelports, on a hydro-only scenario and a
//! self-gravitating one, both with a level-2 AMR corner (so sub-grids,
//! halo traffic, and multipole exchange all cross refinement jumps and
//! shard boundaries). Comparisons are `f64::to_bits` — no tolerances.
//!
//! Also exercises the quiescence machinery under the distributed
//! driver's real traffic shape: many ~57 KB interior-sized parcels in
//! flight at once (the libfabric in-flight counter regression test).

use hydro::eos::IdealGas;
use octotiger::diagnostics::totals;
use octotiger::{Config, DistributedDriver, Scenario, Simulation};
use octree::geometry::Domain;
use octree::subgrid::{Field, ALL_FIELDS};
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use scf::lane_emden::Polytrope;
use std::sync::Arc;
use util::vec3::Vec3;

/// A level-2 AMR tree: the (−,−,−) corner octant refined one level
/// deeper than the rest. 15 leaves — enough to split 4 ways along the
/// SFC while staying debug-build-sized.
fn amr_tree(edge: f64) -> Octree {
    let mut tree = Octree::new(Domain::new(edge));
    tree.refine_where(2, |d, k| {
        let o = d.node_origin(k);
        k.level == 0 || (o.x < 0.0 && o.y < 0.0 && o.z < 0.0)
    });
    tree.check_invariants();
    tree
}

/// Paint a tree from pointwise (ρ, v, ρε), mirroring scenario setup.
fn paint(tree: &mut Octree, eos: &IdealGas, f: impl Fn(Vec3) -> (f64, Vec3, f64)) {
    let domain = tree.domain();
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let (rho, v, e_int) = f(c);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Sx, i, j, k, rho * v.x);
            grid.set(Field::Sy, i, j, k, rho * v.y);
            grid.set(Field::Sz, i, j, k, rho * v.z);
            grid.set(Field::Egas, i, j, k, e_int + 0.5 * rho * v.norm2());
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e_int));
        }
    }
    tree.restrict_all();
}

/// Hydro-only: a Sod-like split on the AMR tree.
fn sod_amr() -> Scenario {
    let eos = IdealGas::new(1.4);
    let mut tree = amr_tree(1.0);
    paint(&mut tree, &eos, |c| {
        if c.x < 0.0 {
            (1.0, Vec3::ZERO, eos.e_from_pressure(1.0))
        } else {
            (0.125, Vec3::ZERO, eos.e_from_pressure(0.1))
        }
    });
    Scenario {
        name: "sod_amr",
        tree,
        config: Config { eos, ..Config::hydro_only() },
        binary: None,
    }
}

/// Self-gravitating: an off-centre polytrope on the AMR tree, so the
/// FMM multipole exchange carries real structure across the corner's
/// refinement jump.
fn star_amr() -> Scenario {
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let mut tree = amr_tree(8.0);
    let center = Vec3::new(-1.0, -1.0, -1.0);
    paint(&mut tree, &eos, |c| {
        let r = (c - center).norm();
        let rho = star.rho(r).max(1e-10);
        let e = star.e_int(r).max(rho * 1e-4);
        (rho, Vec3::ZERO, e)
    });
    Scenario {
        name: "star_amr",
        tree,
        config: Config { eos, ..Config::self_gravitating() },
        binary: None,
    }
}

/// Every node that carries a grid (leaves *and* restricted ancestors)
/// must match bit-for-bit across every field's interior.
fn assert_trees_bit_identical(a: &Octree, b: &Octree, tag: &str) {
    assert_eq!(a.leaves(), b.leaves(), "{tag}: leaf sets differ");
    for level in 0..=a.max_level() {
        for key in a.level_keys(level) {
            let (na, nb) = (a.node(key).unwrap(), b.node(key).unwrap());
            let (Some(ga), Some(gb)) = (na.grid.as_ref(), nb.grid.as_ref()) else {
                assert_eq!(na.grid.is_some(), nb.grid.is_some(), "{tag}: {key:?} grid presence");
                continue;
            };
            for field in ALL_FIELDS {
                for (i, j, k) in ga.indexer().interior() {
                    assert_eq!(
                        ga.at(field, i, j, k).to_bits(),
                        gb.at(field, i, j, k).to_bits(),
                        "{tag}: {key:?} {field:?} ({i},{j},{k})"
                    );
                }
            }
        }
    }
}

fn assert_totals_bit_identical(a: &Octree, b: &Octree, tag: &str) {
    let (ta, tb) = (totals(a, None), totals(b, None));
    assert_eq!(ta.mass.to_bits(), tb.mass.to_bits(), "{tag}: mass");
    for axis in 0..3 {
        assert_eq!(
            ta.momentum.to_array()[axis].to_bits(),
            tb.momentum.to_array()[axis].to_bits(),
            "{tag}: momentum[{axis}]"
        );
        assert_eq!(
            ta.angular.to_array()[axis].to_bits(),
            tb.angular.to_array()[axis].to_bits(),
            "{tag}: angular[{axis}]"
        );
    }
    assert_eq!(ta.kinetic.to_bits(), tb.kinetic.to_bits(), "{tag}: kinetic");
    assert_eq!(ta.internal.to_bits(), tb.internal.to_bits(), "{tag}: internal");
    assert_eq!(ta.scalars.to_bits(), tb.scalars.to_bits(), "{tag}: scalars");
}

/// Run the reference and the distributed driver `steps` steps from the
/// same scenario and demand bitwise agreement of every per-step dt, the
/// final state, and the conserved totals.
fn check_matrix(make: fn() -> Scenario, steps: usize, localities: &[usize]) {
    let mut reference = Simulation::new(make());
    let mut ref_dts = Vec::with_capacity(steps);
    for _ in 0..steps {
        ref_dts.push(reference.step());
    }
    for &n in localities {
        for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
            let tag = format!("{} x{} {kind}", make().name, n);
            let cluster = Arc::new(
                Cluster::builder().localities(n).threads_per(2).transport(kind).build(),
            );
            let mut dist = DistributedDriver::new(make(), cluster).expect("driver");
            for (s, &dt_ref) in ref_dts.iter().enumerate() {
                let dt = dist.step().expect("step");
                assert_eq!(dt.to_bits(), dt_ref.to_bits(), "{tag}: dt of step {s}");
            }
            let assembled = dist.assemble();
            assert_trees_bit_identical(&assembled, reference.tree(), &tag);
            assert_totals_bit_identical(&assembled, reference.tree(), &tag);
            // The fabric must be fully drained after the step barrier.
            assert_eq!(dist.cluster().transport().in_flight(), 0, "{tag}: in flight");
            if n > 1 {
                let m = dist.cluster().metrics();
                assert!(m.get("driver/halo/parcels_tx") > 0, "{tag}: no halo traffic");
            }
        }
    }
}

#[test]
fn hydro_amr_bit_identical_at_1_2_4_localities_both_transports() {
    check_matrix(sod_amr, 3, &[1, 2, 4]);
}

#[test]
fn gravity_amr_bit_identical_at_1_2_4_localities_both_transports() {
    // One step (= two full FMM solves + two exchanges per driver): the
    // debug-mode FMM dominates the suite's runtime, and the multi-step
    // mirror-staleness invariant is covered by the hydro matrix above.
    check_matrix(star_amr, 1, &[1, 2, 4]);
}

#[test]
fn moment_traffic_flows_when_gravity_is_on() {
    let cluster = Arc::new(
        Cluster::builder()
            .localities(2)
            .threads_per(2)
            .transport(TransportKind::Libfabric)
            .build(),
    );
    let mut dist = DistributedDriver::new(star_amr(), cluster).expect("driver");
    dist.step().expect("step");
    let m = dist.cluster().metrics();
    assert!(m.get("driver/moments/parcels_tx") > 0);
    assert!(m.get("driver/moments/bytes_tx") > 0);
    // The transport-level aliases the bench bins read must agree that
    // bytes moved: the driver's counters are payload accounting, the
    // parcelport's are wire accounting.
    assert!(m.get("parcelport/libfabric/bytes_tx") >= m.get("driver/moments/bytes_tx"));
}

/// ISSUE 6 satellite: the FMM chunk-size knob round-trips end to end —
/// `FMM_CHUNK_CELLS` → `Config` default, scenario `Config` → the
/// single-node driver's solver, and a `ClusterBuilder` override → the
/// distributed driver's solvers (winning over the scenario's value).
/// Values are normalized to whole 8-cell rows on the way in.
#[test]
fn fmm_chunk_cells_round_trips_through_config_and_cluster() {
    std::env::set_var("FMM_CHUNK_CELLS", "40");
    assert_eq!(Config::self_gravitating().fmm_chunk_cells, 40);
    std::env::remove_var("FMM_CHUNK_CELLS");

    // Scenario config → single-node driver (20 normalizes up to 24).
    let mut scenario = star_amr();
    scenario.config.fmm_chunk_cells = 20;
    let sim = Simulation::new(scenario);
    assert_eq!(sim.fmm_chunk_cells(), Some(24));

    // Cluster-level override wins over the scenario's.
    let cluster = Arc::new(
        Cluster::builder()
            .localities(2)
            .threads_per(1)
            .fmm_chunk_cells(80)
            .build(),
    );
    assert_eq!(cluster.fmm_chunk_cells(), Some(80));
    let mut scenario = star_amr();
    scenario.config.fmm_chunk_cells = 20;
    let driver = DistributedDriver::new(scenario, cluster).expect("driver");
    assert_eq!(driver.fmm_chunk_cells(), Some(80));

    // No gravity → no solver → no chunk size to report.
    let mut scenario = star_amr();
    scenario.config.gravity = false;
    assert_eq!(Simulation::new(scenario).fmm_chunk_cells(), None);
}

/// ISSUE 7 satellite: the work-aggregation knobs ride the same
/// consolidated override chain (`core::config::knobs`) — environment →
/// `Config` default, scenario `Config` → the single-node driver's
/// solver, and a `ClusterBuilder` override → the distributed driver's
/// solvers. The pairwise `window ≥ slots` clamp applies on the way in.
#[test]
fn fmm_agg_knobs_round_trip_through_config_and_cluster() {
    std::env::set_var("FMM_AGG_SLOTS", "6");
    std::env::set_var("FMM_AGG_WINDOW", "24");
    let c = Config::self_gravitating();
    assert_eq!(c.fmm_agg_slots, 6);
    assert_eq!(c.fmm_agg_window, 24);
    std::env::remove_var("FMM_AGG_SLOTS");
    std::env::remove_var("FMM_AGG_WINDOW");

    // Scenario config → single-node driver; a window smaller than one
    // batch clamps up to the slot count.
    let mut scenario = star_amr();
    scenario.config.fmm_agg_slots = 5;
    scenario.config.fmm_agg_window = 2;
    let sim = Simulation::new(scenario);
    let agg = sim.fmm_aggregation().expect("gravity on");
    assert_eq!(agg.slots, 5);
    assert_eq!(agg.window, 5, "window clamps up to slots");

    // Cluster-level overrides win over the scenario's.
    let cluster = Arc::new(
        Cluster::builder()
            .localities(2)
            .threads_per(1)
            .fmm_agg_slots(12)
            .fmm_agg_window(48)
            .build(),
    );
    assert_eq!(cluster.fmm_agg_slots(), Some(12));
    assert_eq!(cluster.fmm_agg_window(), Some(48));
    let mut scenario = star_amr();
    scenario.config.fmm_agg_slots = 5;
    scenario.config.fmm_agg_window = 20;
    let driver = DistributedDriver::new(scenario, cluster).expect("driver");
    let agg = driver.fmm_aggregation().expect("gravity on");
    assert_eq!(agg.slots, 12);
    assert_eq!(agg.window, 48);

    // No gravity → no solver → nothing to report.
    let mut scenario = star_amr();
    scenario.config.gravity = false;
    assert_eq!(Simulation::new(scenario).fmm_aggregation(), None);
}

/// The PR-1 regression shape, under the distributed driver's real
/// message size: blast interior-sized (~57 KB, rendezvous/RMA path)
/// parcels from every locality at once, then demand full quiescence
/// with zero in-flight messages on both transports.
#[test]
fn quiescence_under_interior_sized_halo_blast() {
    use amt::GlobalId;
    use bytes::Bytes;
    use parcelport::parcel::{ActionId, Parcel};
    use std::sync::atomic::{AtomicUsize, Ordering};

    // 14 fields x 512 interior cells x 8 bytes: one GridMsg payload.
    let payload = Bytes::from(vec![0x5Au8; 14 * 512 * 8]);
    for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
        let cluster =
            Cluster::builder().localities(4).threads_per(2).transport(kind).build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        cluster.register_raw_action(ActionId(0xD07), move |_rt, _id, p| {
            assert_eq!(p.len(), 14 * 512 * 8);
            h.fetch_add(1, Ordering::SeqCst);
        });
        let rounds = 8;
        let mut sent = 0;
        for round in 0..rounds {
            for from in 0..4usize {
                for to in 0..4u32 {
                    if to as usize == from {
                        continue;
                    }
                    cluster
                        .locality(from)
                        .try_send(Parcel {
                            dest_locality: to,
                            dest_component: GlobalId((round * 16 + from) as u64),
                            action: ActionId(0xD07),
                            payload: payload.clone(),
                        })
                        .unwrap();
                    sent += 1;
                }
            }
        }
        cluster.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), sent, "{kind}: lost parcels");
        assert_eq!(cluster.transport().in_flight(), 0, "{kind}: in-flight not drained");
    }
}
