//! The GPU work-aggregation invariant (ISSUE 7 tentpole): fusing FMM
//! kernel work items into batched launches must be *bit-transparent* —
//! any slot/window configuration, worker count, and stream budget
//! produces exactly the serial walk's field — while collapsing the
//! launch count, and degrading per item to the CPU when no stream
//! frees up.

use gravity::gpu::{AggregationConfig, GpuContext};
use gravity::solver::{FmmSolver, GravityField};
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::QueuePolicy;
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use util::morton::MortonKey;
use util::vec3::Vec3;

fn blob(c: Vec3) -> f64 {
    let b1 = Vec3::new(-3.0, 0.5, 0.0);
    let b2 = Vec3::new(3.0, -1.0, 0.5);
    2.0 * (-(c - b1).norm2()).exp() + (-(c - b2).norm2() / 2.0).exp() + 1e-8
}

/// Uniformly refined level-1 tree with the blob density (the hydro-blob
/// scenario shape).
fn hydro_blob_tree() -> Arc<Octree> {
    let mut t = Octree::new(Domain::new(16.0));
    t.refine_where(1, |_d, _k| true);
    let domain = t.domain();
    for key in t.leaves() {
        let node = t.node_mut(key).unwrap();
        let grid = node.grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            grid.set(Field::Rho, i, j, k, blob(c));
        }
    }
    Arc::new(t)
}

/// Two-level AMR tree (root refined, one child refined again) — the
/// star_amr scenario shape, exercising every branch of the walk.
fn amr_tree() -> Arc<Octree> {
    let mut t = Octree::new(Domain::new(16.0));
    t.refine(MortonKey::root());
    t.refine(MortonKey::new(1, 0, 0, 0));
    let domain = t.domain();
    for key in t.leaves() {
        let node = t.node_mut(key).unwrap();
        let grid = node.grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            grid.set(Field::Rho, i, j, k, blob(c));
        }
    }
    t.restrict_all();
    Arc::new(t)
}

fn assert_bit_identical(tree: &Octree, a: &GravityField, b: &GravityField, what: &str) {
    assert_eq!(a.interactions, b.interactions, "{what}: interaction count");
    for key in tree.leaves() {
        let ca = a.leaf(key).expect("leaf in serial field");
        let cb = b.leaf(key).expect("leaf in batched field");
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.phi.to_bits(), y.phi.to_bits(), "{what}: phi");
            for (u, v) in [
                (x.g, y.g),
                (x.force_density, y.force_density),
                (x.torque_density, y.torque_density),
            ] {
                assert_eq!(u.x.to_bits(), v.x.to_bits(), "{what}: x-component");
                assert_eq!(u.y.to_bits(), v.y.to_bits(), "{what}: y-component");
                assert_eq!(u.z.to_bits(), v.z.to_bits(), "{what}: z-component");
            }
        }
    }
}

/// Serial references computed once and shared by the matrix tests and
/// the proptest (the serial walk dominates their runtime).
fn serial_reference(star_amr: bool) -> &'static (Arc<Octree>, GravityField) {
    static BLOB: OnceLock<(Arc<Octree>, GravityField)> = OnceLock::new();
    static AMR: OnceLock<(Arc<Octree>, GravityField)> = OnceLock::new();
    let cell = if star_amr { &AMR } else { &BLOB };
    cell.get_or_init(|| {
        let tree = if star_amr { amr_tree() } else { hydro_blob_tree() };
        let serial = FmmSolver::new(0.5).solve(&tree);
        (tree, serial)
    })
}

/// One batched parallel solve compared bit-for-bit against the cached
/// serial reference, plus the aggregation/launch accounting invariants.
fn check_aggregated(star_amr: bool, slots: usize, window: usize, workers: usize) {
    let (tree, serial) = serial_reference(star_amr);
    let dev = Device::new(DeviceSpec::p100(), 2 * workers);
    let solver = Arc::new(
        FmmSolver::with_gpu(0.5, GpuContext::new(&dev, workers, QueuePolicy::CpuFallback))
            .with_aggregation(slots, window),
    );
    let rt = amt::Runtime::new(workers);
    let par = solver.solve_parallel(tree, &rt);
    let what = format!("star_amr={star_amr} slots={slots} window={window} workers={workers}");
    assert_bit_identical(tree, serial, &par, &what);
    let ctx = solver.gpu().unwrap();
    // §6.1.2 stays a per-kernel observable: the launch split counts
    // items, never batches, and agrees across all three ledgers.
    let stats = ctx.stats();
    assert_eq!(stats.gpu_launches(), par.kernel_launches_gpu, "{what}");
    assert_eq!(stats.cpu_launches(), par.kernel_launches_cpu, "{what}");
    let agg = ctx.agg_stats();
    assert_eq!(agg.items_gpu(), stats.gpu_launches(), "{what}");
    assert_eq!(agg.items_cpu(), stats.cpu_launches(), "{what}");
    assert_eq!(agg.items(), par.kernel_launches, "{what}");
    // Batching can only ever shrink the launch count.
    assert!(agg.batches() <= agg.items(), "{what}");
    // The main thread helps run fan tasks while it waits (`get_help`),
    // and those non-worker submits are counted against the explicit
    // overflow pool — never silently aliased onto worker 0's streams.
    assert!(ctx.overflow_submits() <= agg.items(), "{what}");
}

/// ISSUE 7 satellite: the aggregation-window × worker matrix on the
/// hydro-blob scenario. Window inputs of 1 (per-item launches), 4, and
/// 16 slots must all reproduce the serial bits.
#[test]
fn agg_matrix_is_bit_identical_on_hydro_blob() {
    for slots in [1usize, 4, 16] {
        for workers in [1usize, 2, 4] {
            check_aggregated(false, slots, 4 * slots, workers);
        }
    }
}

/// The same matrix on the two-level AMR star analog.
#[test]
fn agg_matrix_is_bit_identical_on_star_amr() {
    for slots in [1usize, 4, 16] {
        for workers in [1usize, 2, 4] {
            check_aggregated(true, slots, 4 * slots, workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded sweep: any slot/window configuration (normalization
    /// included) and worker count is bit-transparent on both scenarios.
    #[test]
    fn random_agg_configs_never_change_bits(
        slots in 1usize..33,
        window in 1usize..65,
        workers in 1usize..5,
        scenario in 0usize..2,
    ) {
        check_aggregated(scenario == 1, slots, window, workers);
    }
}

/// The tentpole's launch-count collapse: with QueueOnBusy (so every
/// batch lands on a stream) and the default 8-slot window, the fused
/// launch count must be at most half the item count — the ≥2x collapse
/// the bench gate also enforces.
#[test]
fn batching_collapses_launches_at_least_twofold() {
    let (tree, serial) = serial_reference(true);
    let dev = Device::new(DeviceSpec::p100(), 8);
    let solver = Arc::new(
        FmmSolver::with_gpu(0.5, GpuContext::new(&dev, 2, QueuePolicy::QueueOnBusy))
            .with_aggregation(8, 64),
    );
    let rt = amt::Runtime::new(2);
    let par = solver.solve_parallel(tree, &rt);
    assert_bit_identical(tree, serial, &par, "queue-on-busy batched");
    let agg = solver.gpu().unwrap().agg_stats();
    assert_eq!(agg.items_cpu(), 0, "QueueOnBusy never degrades");
    assert_eq!(agg.items_gpu(), par.kernel_launches);
    assert!(
        2 * agg.batches_gpu() <= agg.items_gpu(),
        "batched solve must issue at most half the launches: {} batches for {} items",
        agg.batches_gpu(),
        agg.items_gpu()
    );
    // The device really executed one enqueue per batch, not per item.
    // (The executed counter bumps just after the stream goes idle, so
    // give it a bounded beat after synchronize.)
    solver.gpu().unwrap().synchronize();
    for _ in 0..10_000 {
        if dev.kernels_executed() == agg.batches_gpu() {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(dev.kernels_executed(), agg.batches_gpu());
}

/// §5.1 degradation: a device with no streams sends every batch down
/// the CPU path, per item, and the bits still match the serial walk.
#[test]
fn no_streams_degrades_every_item_to_cpu() {
    let (tree, serial) = serial_reference(false);
    let dev = Device::new(DeviceSpec::p100(), 0);
    let solver = Arc::new(
        FmmSolver::with_gpu(0.5, GpuContext::new(&dev, 2, QueuePolicy::CpuFallback))
            .with_aggregation(8, 64),
    );
    let rt = amt::Runtime::new(2);
    let par = solver.solve_parallel(tree, &rt);
    assert_bit_identical(tree, serial, &par, "no-streams degraded");
    assert_eq!(par.kernel_launches_gpu, 0);
    assert_eq!(par.kernel_launches_cpu, par.kernel_launches);
    let agg = solver.gpu().unwrap().agg_stats();
    assert_eq!(agg.items_gpu(), 0);
    assert_eq!(agg.batches_cpu(), agg.batches());
}

/// The batching counters surface through the runtime's metrics facade
/// with the documented names.
#[test]
fn aggregation_counters_surface_through_metrics() {
    let (tree, _) = serial_reference(true);
    let dev = Device::new(DeviceSpec::p100(), 8);
    let solver = Arc::new(
        FmmSolver::with_gpu(0.5, GpuContext::new(&dev, 2, QueuePolicy::QueueOnBusy))
            .with_aggregation(AggregationConfig::default().slots, 64),
    );
    let rt = amt::Runtime::new(2);
    let par = solver.solve_parallel(tree, &rt);
    let agg = solver.gpu().unwrap().agg_stats();
    let c = rt.counters();
    assert_eq!(c.get("fmm/kernels/batched"), agg.items_gpu());
    assert_eq!(c.get("fmm/agg/batches"), agg.batches());
    assert_eq!(
        c.get("fmm/agg/flush_full")
            + c.get("fmm/agg/flush_window")
            + c.get("fmm/agg/flush_idle"),
        agg.batches(),
        "every batch has exactly one flush trigger"
    );
    assert!(c.get("fmm/agg/occupancy_permille") > 0);
    assert_eq!(
        c.get("fmm/agg/overflow_submits"),
        solver.gpu().unwrap().overflow_submits()
    );
    // The per-kind histograms sum to the batch total.
    let mut hist_total = 0;
    for kind in ["same-level", "near-field"] {
        for label in ["1", "2", "le4", "le8", "le16", "gt16"] {
            hist_total += c.get(&format!("fmm/agg/hist/{kind}/{label}"));
        }
    }
    assert_eq!(hist_total, agg.batches());
    assert!(par.kernel_launches > 0);
}
