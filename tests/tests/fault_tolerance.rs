//! Fault-tolerance suite for the distributed stepper.
//!
//! Two claims from the fault-tolerant parcelport work are proven here:
//!
//! 1. **Reliable delivery is exact**: under any seeded fault plan
//!    *without* a crash (drops, duplicates, delays, reorders), the
//!    distributed driver's results are bit-identical to the fault-free
//!    run — effectively-once action semantics end to end (property
//!    test over seeds, 2 and 4 localities, both transports).
//! 2. **Checkpoint/restart is exact**: a 2-locality run killed
//!    mid-step by an injected locality crash, restored from its latest
//!    checkpoint onto a fresh cluster, reproduces the uninterrupted
//!    run's per-step dts and final grids bit-for-bit (`f64::to_bits`,
//!    no tolerances) — on both transports, including a restore onto a
//!    *different* locality count (crashed shards re-adopted by the
//!    survivors).

use hydro::eos::IdealGas;
use octotiger::{Config, DistributedDriver, Scenario, Simulation};
use octree::geometry::Domain;
use octree::subgrid::{Field, ALL_FIELDS};
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::fault::FaultPlan;
use parcelport::netmodel::TransportKind;
use parcelport::reliable::ReliablePolicy;
use proptest::prelude::*;
use scf::lane_emden::Polytrope;
use std::sync::Arc;
use util::vec3::Vec3;
use util::Error;

/// A level-2 AMR tree (corner octant one level deeper), as in the
/// distributed determinism suite.
fn amr_tree(edge: f64) -> Octree {
    let mut tree = Octree::new(Domain::new(edge));
    tree.refine_where(2, |d, k| {
        let o = d.node_origin(k);
        k.level == 0 || (o.x < 0.0 && o.y < 0.0 && o.z < 0.0)
    });
    tree
}

fn paint(tree: &mut Octree, eos: &IdealGas, f: impl Fn(Vec3) -> (f64, Vec3, f64)) {
    let domain = tree.domain();
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let (rho, v, e_int) = f(c);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Sx, i, j, k, rho * v.x);
            grid.set(Field::Sy, i, j, k, rho * v.y);
            grid.set(Field::Sz, i, j, k, rho * v.z);
            grid.set(Field::Egas, i, j, k, e_int + 0.5 * rho * v.norm2());
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e_int));
        }
    }
    tree.restrict_all();
}

/// Hydro-only Sod split on the AMR tree — cheap enough to run several
/// steps per cluster in a debug build.
fn sod_amr() -> Scenario {
    let eos = IdealGas::new(1.4);
    let mut tree = amr_tree(1.0);
    paint(&mut tree, &eos, |c| {
        if c.x < 0.0 {
            (1.0, Vec3::ZERO, eos.e_from_pressure(1.0))
        } else {
            (0.125, Vec3::ZERO, eos.e_from_pressure(0.1))
        }
    });
    Scenario { name: "sod_amr", tree, config: Config { eos, ..Config::hydro_only() }, binary: None }
}

/// The level-2 self-gravitating scenario (off-centre polytrope): halo
/// *and* multipole traffic cross shard boundaries every step.
fn star_amr() -> Scenario {
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let mut tree = amr_tree(8.0);
    let center = Vec3::new(-1.0, -1.0, -1.0);
    paint(&mut tree, &eos, |c| {
        let r = (c - center).norm();
        let rho = star.rho(r).max(1e-10);
        let e = star.e_int(r).max(rho * 1e-4);
        (rho, Vec3::ZERO, e)
    });
    Scenario {
        name: "star_amr",
        tree,
        config: Config { eos, ..Config::self_gravitating() },
        binary: None,
    }
}

fn assert_trees_bit_identical(a: &Octree, b: &Octree, tag: &str) {
    assert_eq!(a.leaves(), b.leaves(), "{tag}: leaf sets differ");
    for key in a.leaves() {
        let ga = a.node(key).unwrap().grid.as_ref().unwrap();
        let gb = b.node(key).unwrap().grid.as_ref().unwrap();
        for field in ALL_FIELDS {
            for (i, j, k) in ga.indexer().interior() {
                assert_eq!(
                    ga.at(field, i, j, k).to_bits(),
                    gb.at(field, i, j, k).to_bits(),
                    "{tag}: {key:?} {field:?} ({i},{j},{k})"
                );
            }
        }
    }
}

/// A retransmit ladder short enough for debug-build tests while still
/// surviving repeated drops of the same frame.
fn test_policy() -> ReliablePolicy {
    ReliablePolicy { initial_backoff_ticks: 64, max_backoff_ticks: 1024, max_retries: 32 }
}

/// The headline acceptance test: kill a 2-locality run mid-step via an
/// injected crash of locality 1, restore from the latest checkpoint,
/// and demand the continued run be bitwise indistinguishable from an
/// uninterrupted one — per-step dts and every grid value.
#[test]
fn killed_run_restored_from_checkpoint_matches_uninterrupted_run() {
    const STEPS: usize = 4;
    // Uninterrupted reference: the shared-memory driver, which the
    // distributed determinism suite already proves bit-identical to
    // the fault-free distributed run at any locality count.
    let mut reference = Simulation::new(sod_amr());
    let ref_dts: Vec<f64> = (0..STEPS).map(|_| reference.step()).collect();

    for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
        // Probe run: an *eventless* fault plan on an otherwise
        // identical cluster counts locality 1's transport-level sends
        // per step, so the real run can be crashed mid-step 2
        // deterministically (fault injection is seeded and counts the
        // same sends).
        let probe_cluster = Arc::new(
            Cluster::builder()
                .localities(2)
                .threads_per(2)
                .transport(kind)
                .fault_plan(FaultPlan::seeded(0xFA17))
                .reliable(test_policy())
                .build(),
        );
        let mut probe = DistributedDriver::new(sod_amr(), Arc::clone(&probe_cluster))
            .expect("probe driver");
        probe.step().expect("probe step 1");
        let s1 = probe_cluster.fault_layer().expect("fault layer").sends_from(1);
        probe.step().expect("probe step 2");
        let s2 = probe_cluster.fault_layer().expect("fault layer").sends_from(1);
        assert!(s2 > s1, "{kind}: locality 1 must send during step 2");
        let crash_at = s1 + (s2 - s1) / 2;

        // The doomed run: same seed, same fabric, plus the crash.
        let cluster = Arc::new(
            Cluster::builder()
                .localities(2)
                .threads_per(2)
                .transport(kind)
                .fault_plan(FaultPlan::seeded(0xFA17).crash(1, crash_at))
                .reliable(test_policy())
                .build(),
        );
        let mut doomed =
            DistributedDriver::new(sod_amr(), Arc::clone(&cluster)).expect("driver");
        let mut latest: Option<bytes::Bytes> = None;
        let mut survived = 0usize;
        for (s, &dt_ref) in ref_dts.iter().enumerate() {
            match doomed.step() {
                Ok(dt) => {
                    assert_eq!(dt.to_bits(), dt_ref.to_bits(), "{kind}: pre-crash dt {s}");
                    latest = Some(doomed.checkpoint().expect("checkpoint"));
                    survived += 1;
                }
                Err(Error::LocalityCrashed(loc)) => {
                    assert_eq!(loc, 1, "{kind}: the injected crash is locality 1");
                    break;
                }
                Err(e) => panic!("{kind}: unexpected error: {e}"),
            }
        }
        assert!(survived >= 1, "{kind}: step 1 must complete before the crash");
        assert!(survived < STEPS, "{kind}: the crash must interrupt the run");
        assert_eq!(cluster.failed_localities(), vec![1], "{kind}: crash must be detected");
        let blob = latest.expect("at least one checkpoint was cut");

        // Restore onto a fresh, fault-free cluster and finish the run.
        let fresh = Arc::new(
            Cluster::builder().localities(2).threads_per(2).transport(kind).build(),
        );
        let mut restored =
            DistributedDriver::restore(sod_amr(), fresh, &blob).expect("restore");
        assert_eq!(restored.steps as usize, survived, "{kind}: restored step index");
        assert_eq!(restored.dt_history.len(), survived, "{kind}: restored dt history");
        for (s, &dt_ref) in ref_dts.iter().enumerate().take(survived) {
            assert_eq!(
                restored.dt_history[s].to_bits(),
                dt_ref.to_bits(),
                "{kind}: restored dt history entry {s}"
            );
        }
        for (s, &dt_ref) in ref_dts.iter().enumerate().skip(survived) {
            let dt = restored.step().expect("post-restore step");
            assert_eq!(dt.to_bits(), dt_ref.to_bits(), "{kind}: post-restore dt {s}");
        }
        assert_trees_bit_identical(
            &restored.assemble(),
            reference.tree(),
            &format!("{kind}: restored final state"),
        );
    }
}

/// Shard re-adoption: the checkpoint stores leaves, not shards, so a
/// blob cut on a 2-locality cluster restores onto a *different*
/// locality count — the survivors adopt the dead locality's leaves —
/// and the continuation stays bit-identical.
#[test]
fn checkpoint_restores_onto_a_different_locality_count() {
    const STEPS: usize = 3;
    let mut reference = Simulation::new(sod_amr());
    let ref_dts: Vec<f64> = (0..STEPS).map(|_| reference.step()).collect();

    let writer_cluster = Arc::new(Cluster::builder().localities(2).threads_per(2).build());
    let mut writer = DistributedDriver::new(sod_amr(), writer_cluster).expect("driver");
    let dt = writer.step().expect("step 1");
    assert_eq!(dt.to_bits(), ref_dts[0].to_bits());
    let blob = writer.checkpoint().expect("checkpoint");

    // One survivor and three localities both re-partition the same
    // leaf set and continue exactly.
    for n in [1usize, 3] {
        let cluster = Arc::new(Cluster::builder().localities(n).threads_per(2).build());
        let mut restored =
            DistributedDriver::restore(sod_amr(), cluster, &blob).expect("restore");
        for (s, &dt_ref) in ref_dts.iter().enumerate().skip(1) {
            let dt = restored.step().expect("step");
            assert_eq!(dt.to_bits(), dt_ref.to_bits(), "x{n}: dt of step {s}");
        }
        assert_trees_bit_identical(
            &restored.assemble(),
            reference.tree(),
            &format!("x{n}: re-adopted final state"),
        );
    }
}

/// A checkpoint from the wrong scenario topology must be rejected, not
/// silently applied.
#[test]
fn restore_rejects_a_mismatched_scenario() {
    let cluster = Arc::new(Cluster::builder().localities(2).build());
    let driver = DistributedDriver::new(sod_amr(), cluster).expect("driver");
    let blob = driver.checkpoint().expect("checkpoint");
    let other = Arc::new(Cluster::builder().localities(2).build());
    match DistributedDriver::restore(Scenario::sod(1), other, &blob) {
        Err(Error::Checkpoint(_)) => {}
        Err(e) => panic!("wrong error kind: {e}"),
        Ok(_) => panic!("mismatched topology must not restore"),
    }
}

/// Fault-free reference for the property test, computed once: one
/// step of the self-gravitating scenario on the shared-memory driver.
fn star_reference() -> &'static (u64, Octree) {
    use std::sync::OnceLock;
    static REF: OnceLock<(u64, Octree)> = OnceLock::new();
    REF.get_or_init(|| {
        let mut sim = Simulation::new(star_amr());
        let dt = sim.step();
        (dt.to_bits(), sim.tree().clone())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// **Effectively-once under chaos**: any seeded fault plan without
    /// a crash — random drop/duplicate/delay/reorder rates — yields
    /// results bit-identical to the fault-free run on the level-2
    /// self-gravitating scenario, at 2 and 4 localities over both
    /// transports. The reliability layer retransmits what the fabric
    /// eats and suppresses what it duplicates; the action layer never
    /// observes the difference.
    #[test]
    fn any_crashless_fault_plan_is_bit_transparent(seed in any::<u64>()) {
        let (dt_ref, tree_ref) = star_reference();
        // Derive modest per-hazard rates from the seed so every case
        // explores a different mix (0..~12% each; delays up to 96
        // ticks also force reordering across the backoff ladder).
        let pct = |shift: u32| ((seed >> shift) & 0x7) as f64 / 64.0;
        let plan = FaultPlan::seeded(seed)
            .drop(pct(0))
            .duplicate(pct(3))
            .delay(pct(6), 16 + (seed >> 9) % 81)
            .reorder(pct(16));
        for n in [2usize, 4] {
            for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
                let cluster = Arc::new(
                    Cluster::builder()
                        .localities(n)
                        .threads_per(2)
                        .transport(kind)
                        .fault_plan(plan.clone())
                        .reliable(test_policy())
                        .build(),
                );
                let mut driver = DistributedDriver::new(star_amr(), Arc::clone(&cluster))
                    .expect("driver");
                let dt = driver.step().expect("step under faults");
                prop_assert_eq!(dt.to_bits(), *dt_ref, "seed {} x{} {}", seed, n, kind);
                assert_trees_bit_identical(
                    &driver.assemble(),
                    tree_ref,
                    &format!("seed {seed} x{n} {kind}"),
                );
                prop_assert_eq!(
                    cluster.transport().in_flight(),
                    0,
                    "seed {} x{} {}: fabric must drain",
                    seed, n, kind
                );
            }
        }
    }
}
