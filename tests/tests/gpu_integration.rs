//! GPU co-processor integration: real FMM kernels executed through the
//! simulated CUDA streams must produce bit-identical results to direct
//! CPU execution (§5.1: "the stencil-based computation ... is done the
//! same way as on the CPU"), and the event futures must chain into the
//! AMT task graph.

use amt::Runtime;
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::{LaunchOutcome, LaunchStats, QueuePolicy, StreamPool};
use gravity::kernels::{gather_moments, monopole_kernel, MomentGrid};
use gravity::multipole::Multipole;
use gravity::stencil::Stencil;
use std::sync::{Arc, Mutex};
use util::vec3::Vec3;

fn test_grid(width: i32) -> MomentGrid {
    gather_moments(width, |i, j, k| {
        Some(Multipole::monopole(
            1.0 + ((i * 13 + j * 5 + k).rem_euclid(9)) as f64 * 0.25,
            Vec3::new(i as f64, j as f64, k as f64),
        ))
    })
}

#[test]
fn gpu_execution_is_bit_identical_to_cpu() {
    let stencil = Arc::new(Stencil::octotiger());
    let cpu_result = monopole_kernel(&test_grid(stencil.width()), stencil.offsets());

    let device = Device::new(DeviceSpec::p100(), 4);
    let streams = device.streams();
    let result: Arc<Mutex<Option<Vec<f64>>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&result);
    let st = Arc::clone(&stencil);
    streams[0].enqueue(move || {
        let r = monopole_kernel(&test_grid(st.width()), st.offsets());
        *sink.lock().unwrap() = Some(r.expansions.iter().map(|e| e.phi).collect());
    });
    streams[0].synchronize();
    let gpu_phis = result.lock().unwrap().take().expect("kernel ran");
    assert_eq!(gpu_phis.len(), cpu_result.expansions.len());
    for (g, c) in gpu_phis.iter().zip(cpu_result.expansions.iter()) {
        assert_eq!(g.to_bits(), c.phi.to_bits(), "GPU result differs from CPU");
    }
    device.shutdown();
}

#[test]
fn launch_policy_drives_many_kernels_through_the_runtime() {
    // The §5.1 pattern end to end: AMT tasks launching FMM kernels via
    // the stream pool, falling back to the CPU under pressure, with
    // event futures synchronizing completion.
    let rt = Runtime::new(4);
    let device = Device::new(DeviceSpec::v100(), 8);
    let stats = Arc::new(LaunchStats::new());
    let pools: Vec<Arc<StreamPool>> = StreamPool::partition(
        device.streams(),
        4,
        QueuePolicy::CpuFallback,
        Arc::clone(&stats),
    )
    .into_iter()
    .map(Arc::new)
    .collect();
    let stencil = Arc::new(Stencil::octotiger());

    let n = 32;
    let futures: Vec<_> = (0..n)
        .map(|i| {
            let pool = Arc::clone(&pools[i % pools.len()]);
            let st = Arc::clone(&stencil);
            rt.async_call(move || {
                let grid = test_grid(st.width());
                let offsets: Vec<_> = st.offsets().to_vec();
                match pool.launch(move || {
                    let r = monopole_kernel(&grid, &offsets);
                    assert!(r.interactions > 0);
                }) {
                    LaunchOutcome::Gpu(ev) => {
                        ev.get();
                        1u32
                    }
                    LaunchOutcome::CpuFallback(kernel) => {
                        kernel();
                        0u32
                    }
                }
            })
        })
        .collect();
    let mut gpu_count = 0;
    for f in futures {
        gpu_count += rt.get(f);
    }
    assert_eq!(
        stats.gpu_launches() + stats.cpu_launches(),
        n as u64,
        "every kernel must be counted"
    );
    assert_eq!(stats.gpu_launches(), gpu_count as u64);
    assert!(gpu_count > 0, "at least some kernels must reach the GPU");
    device.shutdown();
}

#[test]
fn queue_on_busy_reaches_full_gpu_fraction() {
    // The §6.1.2 proposed fix as an ablation: queueing on busy streams
    // puts 100% of kernels on the GPU even under pressure.
    let device = Device::new(DeviceSpec::p100(), 2);
    let stats = Arc::new(LaunchStats::new());
    let pools = StreamPool::partition(
        device.streams(),
        1,
        QueuePolicy::QueueOnBusy,
        Arc::clone(&stats),
    );
    let mut last = None;
    for _ in 0..64 {
        match pools[0].launch(|| std::thread::sleep(std::time::Duration::from_micros(50))) {
            LaunchOutcome::Gpu(ev) => last = Some(ev),
            LaunchOutcome::CpuFallback(_) => panic!("QueueOnBusy must never fall back"),
        }
    }
    last.unwrap().get();
    assert_eq!(stats.gpu_fraction(), 1.0);
    device.shutdown();
}
