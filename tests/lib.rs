//! Shared helpers for the integration tests in `tests/tests/`.

use hydro::eos::IdealGas;
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use util::vec3::Vec3;

/// Build a uniformly refined tree filled from a (ρ, v, ρε) profile.
pub fn filled_uniform_tree(
    domain_edge: f64,
    level: u8,
    eos: &IdealGas,
    profile: impl Fn(Vec3) -> (f64, Vec3, f64),
) -> Octree {
    let mut tree = Octree::new(Domain::new(domain_edge));
    tree.refine_where(level, |_d, _k| true);
    let domain = tree.domain();
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let (rho, v, e) = profile(c);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Sx, i, j, k, rho * v.x);
            grid.set(Field::Sy, i, j, k, rho * v.y);
            grid.set(Field::Sz, i, j, k, rho * v.z);
            grid.set(Field::Egas, i, j, k, e + 0.5 * rho * v.norm2());
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e));
        }
    }
    tree.restrict_all();
    tree
}

/// A compact two-blob density profile used by several tests.
pub fn two_blob_profile(c: Vec3) -> (f64, Vec3, f64) {
    let b1 = Vec3::new(-2.0, 0.0, 0.0);
    let b2 = Vec3::new(2.0, 0.5, 0.0);
    let rho = 1.5 * (-(c - b1).norm2()).exp() + 0.8 * (-(c - b2).norm2() / 2.0).exp() + 1e-8;
    (rho, Vec3::ZERO, rho * 0.5)
}
